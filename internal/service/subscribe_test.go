package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/solve"
	"repro/internal/workflow"
)

// driftByOne returns a registered instance's hash plus an update that
// provably changes the OVERLAP period (the first service's cost jumps to
// 99, far above the instance's optimum).
func planAndTarget(t *testing.T, s *Server) (string, string, Response) {
	t.Helper()
	app := new(workflow.App)
	if err := app.UnmarshalJSON(readTestdata(t, "mixed6.json")); err != nil {
		t.Fatal(err)
	}
	req := Request{App: app, Model: plan.Overlap, Objective: solve.PeriodObjective}
	resp, err := s.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp.Hash, resp.Instance.App().Name(0), resp
}

// TestDriftDeliversExactlyOneEventPerSubscriber is acceptance criterion
// (d): a PATCH that changes the objective delivers exactly one event to
// each subscriber of that hash; a PATCH that does not change it delivers
// none. Publication happens before Drift returns, so the per-channel
// counts are deterministic.
func TestDriftDeliversExactlyOneEventPerSubscriber(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	hash, target, planned := planAndTarget(t, s)

	subA, cancelA := s.Subscribe(hash)
	subB, cancelB := s.Subscribe(hash)
	chA, chB := subA.Events(), subB.Events()
	defer cancelA()
	defer cancelB()
	if st := s.Stats(); st.Subscribers != 2 {
		t.Fatalf("subscribers = %d", st.Subscribers)
	}

	cost := rat.I(99)
	req := Request{Model: plan.Overlap, Objective: solve.PeriodObjective}
	report, err := s.Drift(hash, []Update{{Service: target, Cost: &cost}}, req)
	if err != nil {
		t.Fatal(err)
	}
	if report.NewValue.Equal(report.OldValue) {
		t.Fatalf("drift to cost 99 did not change the objective (%s)", report.OldValue)
	}

	for name, ch := range map[string]<-chan Event{"A": chA, "B": chB} {
		select {
		case ev := <-ch:
			if ev.Hash != hash || ev.NewHash != report.NewHash ||
				!ev.OldValue.Equal(report.OldValue) || !ev.NewValue.Equal(report.NewValue) {
				t.Errorf("subscriber %s: event %+v inconsistent with report", name, ev)
			}
		default:
			t.Fatalf("subscriber %s received no event", name)
		}
		select {
		case ev := <-ch:
			t.Errorf("subscriber %s received a second event: %+v", name, ev)
		default:
		}
	}
	if st := s.Stats(); st.EventsPublished != 2 || st.EventsDropped != 0 {
		t.Errorf("event counters: %+v", st)
	}

	// A no-op drift (cost re-set to its current value) re-plans to the
	// same objective: no event.
	same := planned.Instance.App().Service(0).Cost
	if _, err := s.Drift(hash, []Update{{Service: target, Cost: &same}}, req); err != nil {
		t.Fatal(err)
	}
	for name, ch := range map[string]<-chan Event{"A": chA, "B": chB} {
		select {
		case ev := <-ch:
			t.Errorf("subscriber %s got an event for an unchanged objective: %+v", name, ev)
		default:
		}
	}

	// Canceled subscriptions stop counting and stop receiving.
	cancelA()
	if st := s.Stats(); st.Subscribers != 1 {
		t.Errorf("subscribers after cancel = %d", st.Subscribers)
	}
}

// TestHTTPSubscribeStreamsReplanEvent drives the SSE surface end to end:
// subscribe over HTTP, PATCH the hash, and read the replan event with the
// full old/new payload.
func TestHTTPSubscribeStreamsReplanEvent(t *testing.T) {
	s, ts := newTestAPI(t)
	hash, target, _ := planAndTarget(t, s)

	resp, err := http.Get(ts.URL + "/v1/subscribe/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	r := bufio.NewReader(resp.Body)
	// The stream opens with a comment line announcing the subscription.
	line, err := r.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, ": subscribed") {
		t.Fatalf("stream preamble %q, %v", line, err)
	}

	var drift driftResponseJSON
	patchResp := doJSON(t, "PATCH", ts.URL+"/v1/instance/"+hash,
		fmt.Sprintf(`{"model": "overlap", "objective": "period", "updates": [{"service": %q, "cost": "99"}]}`, target), &drift)
	if patchResp.StatusCode != http.StatusOK {
		t.Fatalf("patch status %d", patchResp.StatusCode)
	}

	// Read until the event's data line (skipping blank keep-alive lines).
	var data string
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("reading event: %v", err)
		}
		if strings.HasPrefix(line, "data: ") {
			data = strings.TrimSpace(strings.TrimPrefix(line, "data: "))
			break
		}
	}
	var ev eventJSON
	if err := json.Unmarshal([]byte(data), &ev); err != nil {
		t.Fatalf("event payload %q: %v", data, err)
	}
	if ev.Hash != hash || ev.NewHash != drift.NewHash ||
		!ev.OldValue.Equal(drift.OldValue) || !ev.NewValue.Equal(drift.NewValue) {
		t.Errorf("event %+v inconsistent with the drift response %+v", ev, drift)
	}
}

// TestSlowSubscriberDropsAreCountedAndFlagged pins the slow-consumer
// contract: a subscriber that stops draining loses exactly the events
// beyond its buffer, the hub counts them (surfaced as events_dropped in
// /v1/stats), and the subscription's lag counter hands the same number to
// the consumer — silently missing a re-plan is impossible.
func TestSlowSubscriberDropsAreCountedAndFlagged(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	sub, cancel := s.Subscribe("h")
	defer cancel()

	const extra = 3
	for i := 0; i < subscriberBuffer+extra; i++ {
		s.hub.publish("h", Event{Hash: "h", NewHash: "h2"})
	}
	st := s.Stats()
	if st.EventsPublished != subscriberBuffer || st.EventsDropped != extra {
		t.Fatalf("published %d dropped %d, want %d and %d",
			st.EventsPublished, st.EventsDropped, subscriberBuffer, extra)
	}
	if got := sub.Lagged(); got != extra {
		t.Fatalf("Lagged() = %d, want %d", got, extra)
	}
	if got := sub.Lagged(); got != 0 {
		t.Fatalf("second Lagged() = %d, want 0 (the counter drains)", got)
	}
	if got := len(sub.Events()); got != subscriberBuffer {
		t.Fatalf("buffered events = %d, want %d", got, subscriberBuffer)
	}
	// Draining resumes cleanly: the buffered events are the FIRST ones
	// published, not the last.
	<-sub.Events()
	s.hub.publish("h", Event{Hash: "h"})
	if got := sub.Lagged(); got != 0 {
		t.Fatalf("lag after recovery = %d, want 0", got)
	}
}

// TestHTTPSubscribeEmitsLaggedEvent drives the SSE lagged notice: a
// subscriber whose buffer overflowed receives an explicit `lagged` event
// naming the number of missed re-plans on its next wake-up, so it can
// re-fetch instead of trusting the stream.
func TestHTTPSubscribeEmitsLaggedEvent(t *testing.T) {
	s, ts := newTestAPI(t)
	hash, _, _ := planAndTarget(t, s)

	resp, err := http.Get(ts.URL + "/v1/subscribe/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	r := bufio.NewReader(resp.Body)
	if line, err := r.ReadString('\n'); err != nil || !strings.HasPrefix(line, ": subscribed") {
		t.Fatalf("stream preamble %q, %v", line, err)
	}

	// Find the handler's subscription and lag it directly — the
	// deterministic stand-in for a real stall, which would need the TCP
	// window to fill while drift re-plans overflow the hub buffer.
	s.hub.mu.Lock()
	tp := s.hub.topics[hash]
	if tp == nil || len(tp.subs) != 1 {
		s.hub.mu.Unlock()
		t.Fatalf("no single subscription for %s", hash)
	}
	for sub := range tp.subs {
		sub.lagged.Add(3)
	}
	s.hub.mu.Unlock()
	s.hub.publish(hash, Event{Hash: hash, NewHash: "next"})

	sawReplan := false
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("reading stream: %v", err)
		}
		if strings.HasPrefix(line, "event: replan") {
			sawReplan = true
		}
		if strings.HasPrefix(line, "event: lagged") {
			if !sawReplan {
				t.Fatal("lagged notice arrived before the wake-up event")
			}
			data, err := r.ReadString('\n')
			if err != nil || strings.TrimSpace(data) != `data: {"dropped": 3}` {
				t.Fatalf("lagged payload %q, %v", data, err)
			}
			return
		}
	}
}

// TestSubscribeSinceReplaysRetainedEvents pins the hub-level resume
// contract: a subscriber resuming from a cursor replays exactly the
// retained events after it (in order), a cursor beyond the retained ring
// reports the gap, and the replay slice is atomically consistent with the
// live channel — no event is both replayed and delivered, none falls
// between.
func TestSubscribeSinceReplaysRetainedEvents(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	const extra = 5
	total := uint64(replayRing + extra)
	for i := uint64(0); i < total; i++ {
		s.hub.publish("h", Event{Hash: "h", NewHash: "next"})
	}

	// Resume from the second-to-last seen event: two replays, no gap.
	sub, replay, missed, cancel := s.SubscribeSince("h", total-2)
	if missed != 0 || len(replay) != 2 ||
		replay[0].ID != total-1 || replay[1].ID != total {
		t.Fatalf("resume at %d: replay %v missed %d, want IDs [%d %d] and 0",
			total-2, replay, missed, total-1, total)
	}
	// The live channel carries only what publishes AFTER the resume.
	if got := len(sub.Events()); got != 0 {
		t.Fatalf("live channel pre-seeded with %d events", got)
	}
	s.hub.publish("h", Event{Hash: "h"})
	ev := <-sub.Events()
	if ev.ID != total+1 {
		t.Fatalf("live event ID %d, want %d", ev.ID, total+1)
	}
	cancel()

	// Cursor 0 ("subscribed before, saw nothing") is beyond the ring by
	// exactly the evicted prefix; the whole ring replays.
	_, replay, missed, cancel2 := s.SubscribeSince("h", 0)
	defer cancel2()
	if missed != extra+1 { // events 1..extra evicted, plus the post-resume publish shifted one more out
		t.Fatalf("gap from cursor 0 = %d, want %d", missed, extra+1)
	}
	if len(replay) != replayRing || replay[0].ID != uint64(extra)+2 {
		t.Fatalf("replay len %d first ID %d, want %d starting at %d",
			len(replay), replay[0].ID, replayRing, extra+2)
	}

	// A cursor at or past the sequence head replays nothing.
	_, replay, missed, cancel3 := s.SubscribeSince("h", total+1)
	defer cancel3()
	if len(replay) != 0 || missed != 0 {
		t.Fatalf("up-to-date resume: replay %v missed %d", replay, missed)
	}
}

// TestHTTPSubscribeResumesFromLastEventID drives the SSE resume end to
// end: a subscriber reads event 1 with its id: line, disconnects, misses a
// re-plan, reconnects with Last-Event-ID: 1, and receives the missed event
// as a replay frame before anything live.
func TestHTTPSubscribeResumesFromLastEventID(t *testing.T) {
	s, ts := newTestAPI(t)
	hash, target, _ := planAndTarget(t, s)

	readFrame := func(r *bufio.Reader) (id, data string) {
		t.Helper()
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				t.Fatalf("reading stream: %v", err)
			}
			if strings.HasPrefix(line, "id: ") {
				id = strings.TrimSpace(strings.TrimPrefix(line, "id: "))
			}
			if strings.HasPrefix(line, "data: ") {
				return id, strings.TrimSpace(strings.TrimPrefix(line, "data: "))
			}
		}
	}

	// First connection sees the first drift as live event 1.
	resp, err := http.Get(ts.URL + "/v1/subscribe/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(resp.Body)
	if line, _ := r.ReadString('\n'); !strings.HasPrefix(line, ": subscribed") {
		t.Fatalf("stream preamble %q", line)
	}
	var first driftResponseJSON
	doJSON(t, "PATCH", ts.URL+"/v1/instance/"+hash,
		fmt.Sprintf(`{"model": "overlap", "objective": "period", "updates": [{"service": %q, "cost": "99"}]}`, target), &first)
	id, _ := readFrame(r)
	if id != "1" {
		t.Fatalf("first event id %q, want 1", id)
	}
	resp.Body.Close() // disconnect; the next drift is missed

	var second driftResponseJSON
	doJSON(t, "PATCH", ts.URL+"/v1/instance/"+hash,
		fmt.Sprintf(`{"model": "overlap", "objective": "period", "updates": [{"service": %q, "cost": "999"}]}`, target), &second)
	if second.NewValue.Equal(first.NewValue) {
		t.Fatal("second drift must change the objective again")
	}

	// Reconnect with the resume cursor: event 2 replays immediately, with
	// its instance payload intact.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/subscribe/"+hash, nil)
	req.Header.Set("Last-Event-ID", "1")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	r2 := bufio.NewReader(resp2.Body)
	if line, _ := r2.ReadString('\n'); !strings.HasPrefix(line, ": subscribed") {
		t.Fatalf("resume preamble %q", line)
	}
	id, data := readFrame(r2)
	var ev eventJSON
	if err := json.Unmarshal([]byte(data), &ev); err != nil {
		t.Fatalf("replayed payload %q: %v", data, err)
	}
	if id != "2" || ev.NewHash != second.NewHash || !ev.NewValue.Equal(second.NewValue) {
		t.Fatalf("replayed frame id %q event %+v, want id 2 matching %+v", id, ev, second)
	}
	if len(ev.Instance) == 0 {
		t.Fatal("replayed event lost its instance document")
	}

	// A resume gap beyond the retained ring announces itself as lagged.
	s.hub.mu.Lock()
	tp := s.hub.topics[hash]
	s.hub.mu.Unlock()
	for tp.seq < replayRing+2 {
		s.hub.publish(hash, Event{Hash: hash, NewHash: "x"})
	}
	req3, _ := http.NewRequest("GET", ts.URL+"/v1/subscribe/"+hash, nil)
	req3.Header.Set("Last-Event-ID", "0")
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	r3 := bufio.NewReader(resp3.Body)
	for {
		line, err := r3.ReadString('\n')
		if err != nil {
			t.Fatalf("reading gapped stream: %v", err)
		}
		if strings.HasPrefix(line, "event: lagged") {
			data, _ := r3.ReadString('\n')
			if strings.TrimSpace(data) != `data: {"dropped": 2}` {
				t.Fatalf("gap payload %q, want dropped: 2", data)
			}
			break
		}
		if strings.HasPrefix(line, "event: replan") {
			t.Fatal("replay started before the lagged notice")
		}
	}

	// Malformed cursors are rejected outright.
	req4, _ := http.NewRequest("GET", ts.URL+"/v1/subscribe/"+hash, nil)
	req4.Header.Set("Last-Event-ID", "not-a-number")
	resp4, err := http.DefaultClient.Do(req4)
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad Last-Event-ID status %d, want 400", resp4.StatusCode)
	}
}

// TestHTTPSubscribeUnknownHash404s: subscriptions require a registered
// instance.
func TestHTTPSubscribeUnknownHash404s(t *testing.T) {
	_, ts := newTestAPI(t)
	resp, err := http.Get(ts.URL + "/v1/subscribe/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}
