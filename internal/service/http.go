package service

// HTTP/JSON surface of the planning service, mounted by cmd/filterd and
// exercised end to end by examples/service. The wire format reuses the
// repository's existing codecs: instances are workflow.App JSON (the same
// files filterplan -in reads), schedules are oplist.List JSON (the same
// exact-rational operation lists the library emits everywhere else), and
// the option vocabulary is the shared cliopt one, so every name accepted
// on a CLI flag is accepted in a request body.
//
//	POST  /v1/plan            plan one instance
//	POST  /v1/batch           plan many instances in one request
//	PATCH /v1/instance/{hash} drift re-planning against a registered instance
//	GET   /v1/subscribe/{hash} server-sent re-plan events for a registered instance
//	GET   /v1/explain/{hash}  provenance of the last serve: source, solver counters, timings
//	GET   /v1/healthz         liveness plus build identity
//	GET   /v1/stats           cache/queue/solve/store/subscription counters (JSON)
//	GET   /metrics            Prometheus text format (internal/metrics)
//	GET   /debug/requests     recent request spans (internal/obs ring)
//
// Every handler runs under the request's context: a client that
// disconnects or times out aborts its own solve (the search loops poll
// the context), the aborted error is never cached, and the response
// status is 499 (client closed request, the de-facto convention) — a dead
// client stops burning the pool.
//
// Every response — success, shed, failure, stream — carries
// X-Filterd-Request-Id (obs.Middleware echoes it before handlers run),
// and JSON error bodies repeat the id for support correlation.
import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/cliopt"
	"repro/internal/obs"
	"repro/internal/plancache"
	"repro/internal/rat"
	"repro/internal/workflow"
)

// maxBodyBytes bounds request bodies (instances are small; 4 MiB is
// generous even for batches).
const maxBodyBytes = 4 << 20

// StatusClientClosedRequest is the response status of a request whose own
// context died mid-solve (canceled or past its deadline). 499 is nginx's
// convention; Go's stdlib has no name for it.
const StatusClientClosedRequest = 499

// errStatus maps a service error to its response status: shed admissions
// are 429 (retry after the burst), a closing server is 503, context death
// is the client's doing (499), validation problems are 422, everything
// else stays a server-side 500.
func errStatus(err error, fallback int) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return StatusClientClosedRequest
	}
	return fallback
}

// planParamsJSON are the solve parameters shared by plan, batch items and
// drift requests. Empty strings mean the defaults.
type planParamsJSON struct {
	Model     string `json:"model,omitempty"`
	Objective string `json:"objective,omitempty"`
	Method    string `json:"method,omitempty"`
	Family    string `json:"family,omitempty"`
	MaxExactN int    `json:"max_exact_n,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	Restarts  int    `json:"restarts,omitempty"`
}

// request resolves the wire parameters into a Request for app.
func (p planParamsJSON) request(app *workflow.App) (Request, error) {
	req := Request{App: app, MaxExactN: p.MaxExactN, Seed: p.Seed, Restarts: p.Restarts}
	var err error
	if p.Model != "" {
		if req.Model, err = cliopt.Model(p.Model); err != nil {
			return req, err
		}
	}
	if p.Objective != "" {
		if req.Objective, err = cliopt.Objective(p.Objective); err != nil {
			return req, err
		}
	}
	if p.Method != "" {
		if req.Method, err = cliopt.Method(p.Method); err != nil {
			return req, err
		}
	}
	if p.Family != "" {
		if req.Family, err = cliopt.Family(p.Family); err != nil {
			return req, err
		}
	}
	return req, nil
}

type planRequestJSON struct {
	// Instance is a workflow.App JSON document — identical to the
	// filterplan -in file format.
	Instance json.RawMessage `json:"instance"`
	planParamsJSON
}

type graphJSON struct {
	// Services lists the canonical service order; Edges the execution
	// graph over service names.
	Services []string    `json:"services"`
	Edges    [][2]string `json:"edges"`
}

type planResponseJSON struct {
	Hash      string    `json:"hash"`
	Cached    bool      `json:"cached"`
	Outcome   string    `json:"outcome"` // miss, hit or coalesced
	Model     string    `json:"model"`
	Objective string    `json:"objective"`
	Value     rat.Rat   `json:"value"`
	Exact     bool      `json:"exact"`
	Period    rat.Rat   `json:"period"`
	Latency   rat.Rat   `json:"latency"`
	Graph     graphJSON `json:"graph"`
	// Schedule is the operation list in the oplist JSON codec (exact
	// rational begin/end times, communications keyed by endpoint names).
	Schedule json.RawMessage `json:"schedule"`
}

func planResponse(resp Response, req Request) (planResponseJSON, error) {
	sched, err := json.Marshal(resp.Solution.Sched.List)
	if err != nil {
		return planResponseJSON{}, fmt.Errorf("service: encoding schedule: %w", err)
	}
	app := resp.Instance.App()
	g := graphJSON{Services: make([]string, app.N())}
	for i := 0; i < app.N(); i++ {
		g.Services[i] = app.Name(i)
	}
	for _, e := range resp.Solution.Graph.Graph().Edges() {
		g.Edges = append(g.Edges, [2]string{app.Name(e[0]), app.Name(e[1])})
	}
	return planResponseJSON{
		Hash:    resp.Hash,
		Cached:  resp.Outcome == plancache.Hit,
		Outcome: resp.Outcome.String(),
		// Lowercased so the response vocabulary matches the request one
		// (cliopt parses case-insensitively, clients may compare exactly).
		Model:     strings.ToLower(req.Model.String()),
		Objective: req.Objective.String(),
		Value:     resp.Solution.Value,
		Exact:     resp.Solution.Exact,
		Period:    resp.Solution.Sched.List.Period(),
		Latency:   resp.Solution.Sched.List.Latency(),
		Graph:     g,
		Schedule:  sched,
	}, nil
}

type batchRequestJSON struct {
	Requests []planRequestJSON `json:"requests"`
}

type batchItemJSON struct {
	Error string            `json:"error,omitempty"`
	Plan  *planResponseJSON `json:"plan,omitempty"`
}

type batchResponseJSON struct {
	Results []batchItemJSON `json:"results"`
}

type driftUpdateJSON struct {
	Service     string `json:"service"`
	Cost        string `json:"cost,omitempty"`
	Selectivity string `json:"selectivity,omitempty"`
}

type driftRequestJSON struct {
	Updates []driftUpdateJSON `json:"updates"`
	planParamsJSON
}

type driftResponseJSON struct {
	OldHash   string           `json:"old_hash"`
	NewHash   string           `json:"new_hash"`
	OldValue  rat.Rat          `json:"old_value"`
	NewValue  rat.Rat          `json:"new_value"`
	WarmStart bool             `json:"warm_start"`
	Incumbent *rat.Rat         `json:"incumbent,omitempty"`
	Plan      planResponseJSON `json:"plan"`
}

type statsJSON struct {
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheCoalesced int64 `json:"cache_coalesced"`
	CacheEvictions int64 `json:"cache_evictions"`
	CacheSeeded    int64 `json:"cache_seeded"`
	CacheLen       int   `json:"cache_len"`
	CacheCap       int   `json:"cache_cap"`
	InFlight       int   `json:"in_flight"`
	PlanRequests   int64 `json:"plan_requests"`
	DriftRequests  int64 `json:"drift_requests"`
	Rejected       int64 `json:"rejected"`
	Solves         int64 `json:"solves"`
	Registered     int   `json:"registered_instances"`
	QueueDepth     int   `json:"queue_depth"`
	Workers        int   `json:"workers"`
	// Backpressure counters (Config.MaxPending watermark).
	Shed       int64 `json:"shed"`
	Pending    int   `json:"pending"`
	MaxPending int   `json:"max_pending"`
	// Persistence (internal/store) and drift-subscription counters.
	Persistent       bool  `json:"persistent"`
	StoreWrites      int64 `json:"store_writes,omitempty"`
	StoreLoaded      int64 `json:"store_loaded,omitempty"`
	StoreSkipped     int64 `json:"store_skipped,omitempty"`
	StoreQuarantined int64 `json:"store_quarantined,omitempty"`
	// Replica-sync counters (/v1/sync, the anti-entropy merge traffic).
	SyncInstances   int64 `json:"sync_instances"`
	SyncEntries     int64 `json:"sync_entries"`
	SyncDuplicates  int64 `json:"sync_duplicates"`
	SyncRejected    int64 `json:"sync_rejected"`
	SyncConflicts   int64 `json:"sync_conflicts"`
	SyncBytesIn     int64 `json:"sync_bytes_in"`
	SyncBytesOut    int64 `json:"sync_bytes_out"`
	Subscribers     int   `json:"subscribers"`
	EventsPublished int64 `json:"events_published"`
	EventsDropped   int64 `json:"events_dropped"`
	// Service-wide orchestration memo counters (Config.MemoSize).
	MemoHits      int64 `json:"memo_hits"`
	MemoMisses    int64 `json:"memo_misses"`
	MemoLen       int   `json:"memo_len"`
	MemoEvictions int64 `json:"memo_evictions"`
	// Solver search-effort totals (branch-and-bound counters summed over
	// every executed solve) and build identity.
	SolverExpanded  int64  `json:"solver_nodes_expanded"`
	SolverPruned    int64  `json:"solver_nodes_pruned"`
	SolverEvaluated int64  `json:"solver_candidates_evaluated"`
	Version         string `json:"version"`
	Revision        string `json:"revision"`
}

// healthzJSON is the GET /v1/healthz liveness document.
type healthzJSON struct {
	Status   string `json:"status"`
	Version  string `json:"version"`
	Revision string `json:"revision"`
}

// explainJSON renders one provenance record (GET /v1/explain/{hash}).
type explainJSON struct {
	Hash      string `json:"hash"`
	Key       string `json:"key"`
	RequestID string `json:"request_id,omitempty"`
	Model     string `json:"model"`
	Objective string `json:"objective"`
	// Method and Family are the RESOLVED strategy when the effort record
	// exists (what the solver actually searched), the requested one
	// otherwise.
	Method  string              `json:"method"`
	Family  string              `json:"family"`
	Source  string              `json:"source"`  // cache | store | solve | failover
	Outcome string              `json:"outcome"` // miss | hit | coalesced
	Value   rat.Rat             `json:"value"`
	Exact   bool                `json:"exact"`
	Served  time.Time           `json:"served"`
	Solver  *explainSolverJSON  `json:"solver,omitempty"`
	Orch    *explainOrchJSON    `json:"orchestration,omitempty"`
	Timings *explainTimingsJSON `json:"timings,omitempty"`
}

type explainSolverJSON struct {
	Expanded  int64 `json:"expanded"`
	Pruned    int64 `json:"pruned"`
	Evaluated int64 `json:"evaluated"`
}

type explainOrchJSON struct {
	Orchestrations  int64 `json:"orchestrations"`
	MemoHits        int64 `json:"memo_hits"`
	Prefixes        int64 `json:"prefixes"`
	Pruned          int64 `json:"pruned"`
	Evaluated       int64 `json:"evaluated"`
	BoundEdgesBuilt int64 `json:"bound_edges_built"`
	BoundEdgesFlat  int64 `json:"bound_edges_flat"`
	FilterCertified int64 `json:"filter_certified"`
	FilterFallback  int64 `json:"filter_fallback"`
}

type explainTimingsJSON struct {
	QueueSeconds float64 `json:"queue_seconds"`
	SolveSeconds float64 `json:"solve_seconds"`
	OrchSeconds  float64 `json:"orchestrate_seconds"`
}

// explainResponse renders a provenance record. The solver, orchestration
// and timing blocks come from the effort record of the producing solve —
// identical whether this serve solved, hit the cache, or warm-loaded the
// plan (the /v1/explain determinism contract); they are absent only for
// plans persisted before effort records existed.
func explainResponse(e Explain) explainJSON {
	out := explainJSON{
		Hash:      e.Hash,
		Key:       e.Key,
		RequestID: e.RequestID,
		Model:     strings.ToLower(e.Model.String()),
		Objective: e.Objective.String(),
		Method:    e.Method.String(),
		Family:    e.Family.String(),
		Source:    e.Source,
		Outcome:   e.Outcome,
		Value:     e.Value,
		Exact:     e.Exact,
		Served:    e.Served,
	}
	if ef := e.Effort; ef != nil {
		out.Method = ef.Method.String()
		out.Family = ef.Family.String()
		out.Solver = &explainSolverJSON{
			Expanded:  ef.Search.Expanded,
			Pruned:    ef.Search.Pruned,
			Evaluated: ef.Search.Evaluated,
		}
		out.Orch = &explainOrchJSON{
			Orchestrations:  ef.Evals,
			MemoHits:        ef.MemoHits,
			Prefixes:        ef.Orch.Prefixes,
			Pruned:          ef.Orch.Pruned,
			Evaluated:       ef.Orch.Evaluated,
			BoundEdgesBuilt: ef.Orch.BoundEdgesBuilt,
			BoundEdgesFlat:  ef.Orch.BoundEdgesFlat,
			FilterCertified: ef.Orch.FilterCertified,
			FilterFallback:  ef.Orch.FilterFallback,
		}
		out.Timings = &explainTimingsJSON{
			QueueSeconds: float64(ef.QueueNanos) / 1e9,
			SolveSeconds: float64(ef.SolveNanos) / 1e9,
			OrchSeconds:  float64(ef.OrchNanos) / 1e9,
		}
	}
	return out
}

// eventJSON is the SSE payload of one re-plan notification. Instance is
// the drifted application document (the filterplan -in format), so a
// subscriber — e.g. the stream executor reacting to a PATCH it did not
// issue itself — can POST it to /v1/plan (a cache hit) and obtain the
// re-planned schedule without knowing the updates.
type eventJSON struct {
	Hash     string          `json:"hash"`
	NewHash  string          `json:"new_hash"`
	OldValue rat.Rat         `json:"old_value"`
	NewValue rat.Rat         `json:"new_value"`
	Instance json.RawMessage `json:"instance,omitempty"`
}

// encodeEvent renders one hub event as an SSE frame: the per-hash event ID
// (the client echoes it as Last-Event-ID on reconnect) plus the replan
// payload.
func encodeEvent(ev Event) ([]byte, error) {
	doc := eventJSON{
		Hash:     ev.Hash,
		NewHash:  ev.NewHash,
		OldValue: ev.OldValue,
		NewValue: ev.NewValue,
	}
	if ev.NewApp != nil {
		inst, err := json.Marshal(ev.NewApp)
		if err != nil {
			return nil, err
		}
		doc.Instance = inst
	}
	data, err := json.Marshal(doc)
	if err != nil {
		return nil, err
	}
	return []byte(fmt.Sprintf("id: %d\nevent: replan\ndata: %s\n\n", ev.ID, data)), nil
}

// statusWriter records the committed status code for the request
// counter. It forwards Flush so instrumented SSE streams still flush
// event by event.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// instrument wraps a route handler with the request counter and latency
// histogram (subscribe streams record their whole lifetime — their
// latency series measures stream duration, not time-to-first-byte).
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		s.mRequests.With(route, strconv.Itoa(sw.code)).Inc()
		s.mLatency.With(route).Observe(time.Since(start).Seconds())
	}
}

// Handler returns the HTTP API of the server.
func Handler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", s.metrics.Handler())
	mux.HandleFunc("POST /v1/plan", s.instrument("plan", func(w http.ResponseWriter, r *http.Request) {
		var doc planRequestJSON
		if !decodeBody(w, r, &doc) {
			return
		}
		req, err := decodePlanRequest(doc)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		resp, err := s.PlanContext(r.Context(), req)
		if err != nil {
			httpError(w, errStatus(err, http.StatusUnprocessableEntity), err)
			return
		}
		out, err := planResponse(resp, req)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, out)
	}))

	mux.HandleFunc("POST /v1/batch", s.instrument("batch", func(w http.ResponseWriter, r *http.Request) {
		var doc batchRequestJSON
		if !decodeBody(w, r, &doc) {
			return
		}
		if len(doc.Requests) == 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("service: batch has no requests"))
			return
		}
		// Decode every item first so a malformed item fails fast without
		// burning solver time on its neighbors.
		reqs := make([]Request, len(doc.Requests))
		decodeErrs := make([]error, len(doc.Requests))
		valid := make([]Request, 0, len(doc.Requests))
		for i, item := range doc.Requests {
			reqs[i], decodeErrs[i] = decodePlanRequest(item)
			if decodeErrs[i] == nil {
				valid = append(valid, reqs[i])
			}
		}
		results := s.PlanBatchContext(r.Context(), valid)
		out := batchResponseJSON{Results: make([]batchItemJSON, len(doc.Requests))}
		vi := 0
		for i := range doc.Requests {
			if decodeErrs[i] != nil {
				out.Results[i] = batchItemJSON{Error: decodeErrs[i].Error()}
				continue
			}
			res := results[vi]
			vi++
			if res.Err != nil {
				out.Results[i] = batchItemJSON{Error: res.Err.Error()}
				continue
			}
			pr, err := planResponse(res.Response, reqs[i])
			if err != nil {
				out.Results[i] = batchItemJSON{Error: err.Error()}
				continue
			}
			out.Results[i] = batchItemJSON{Plan: &pr}
		}
		writeJSON(w, http.StatusOK, out)
	}))

	mux.HandleFunc("PATCH /v1/instance/{hash}", s.instrument("drift", func(w http.ResponseWriter, r *http.Request) {
		hash := r.PathValue("hash")
		if _, ok := s.Instance(hash); !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("service: no registered instance with hash %s", hash))
			return
		}
		var doc driftRequestJSON
		if !decodeBody(w, r, &doc) {
			return
		}
		updates := make([]Update, len(doc.Updates))
		for i, u := range doc.Updates {
			updates[i].Service = u.Service
			if u.Cost != "" {
				c, err := rat.Parse(u.Cost)
				if err != nil {
					httpError(w, http.StatusBadRequest, fmt.Errorf("service: update %d cost: %w", i, err))
					return
				}
				updates[i].Cost = &c
			}
			if u.Selectivity != "" {
				sel, err := rat.Parse(u.Selectivity)
				if err != nil {
					httpError(w, http.StatusBadRequest, fmt.Errorf("service: update %d selectivity: %w", i, err))
					return
				}
				updates[i].Selectivity = &sel
			}
		}
		params, err := doc.planParamsJSON.request(nil)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		report, err := s.DriftContext(r.Context(), hash, updates, params)
		if err != nil {
			httpError(w, errStatus(err, http.StatusUnprocessableEntity), err)
			return
		}
		pr, err := planResponse(report.Response, params)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		out := driftResponseJSON{
			OldHash:   report.OldHash,
			NewHash:   report.NewHash,
			OldValue:  report.OldValue,
			NewValue:  report.NewValue,
			WarmStart: report.WarmStart,
			Plan:      pr,
		}
		if report.WarmStart {
			inc := report.Incumbent
			out.Incumbent = &inc
		}
		writeJSON(w, http.StatusOK, out)
	}))

	mux.HandleFunc("GET /v1/subscribe/{hash}", s.instrument("subscribe", func(w http.ResponseWriter, r *http.Request) {
		hash := r.PathValue("hash")
		if _, ok := s.Instance(hash); !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("service: no registered instance with hash %s", hash))
			return
		}
		fl, ok := w.(http.Flusher)
		if !ok {
			httpError(w, http.StatusInternalServerError, fmt.Errorf("service: streaming unsupported by this server"))
			return
		}
		// Last-Event-ID (the SSE resume convention) replays the retained
		// events fired between a disconnect and this reconnect; a gap
		// beyond the retained history is reported as a lagged event, the
		// same "re-fetch the plan" signal as an in-connection overflow.
		// Without the header the stream is live-only, per the SSE spec.
		sinceID := liveOnly
		if lastID := r.Header.Get("Last-Event-ID"); lastID != "" {
			id, err := strconv.ParseUint(lastID, 10, 64)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("service: parsing Last-Event-ID: %w", err))
				return
			}
			sinceID = id
		}
		sub, replay, missed, cancel := s.SubscribeSince(hash, sinceID)
		events := sub.Events()
		defer cancel()
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusOK)
		// An immediate comment line tells the client the stream is live
		// before the first (possibly much later) re-plan event.
		fmt.Fprintf(w, ": subscribed %s\n\n", hash)
		if missed > 0 {
			fmt.Fprintf(w, "event: lagged\ndata: {\"dropped\": %d}\n\n", missed)
		}
		for _, ev := range replay {
			frame, err := encodeEvent(ev)
			if err != nil {
				slog.Warn("service: encoding event failed",
					"request_id", w.Header().Get(obs.HeaderRequestID), "err", err)
				return
			}
			w.Write(frame)
		}
		fl.Flush()
		for {
			select {
			case <-r.Context().Done():
				return
			case <-s.Closing():
				// Server shutdown ends the stream so a connected
				// subscriber cannot stall http.Server.Shutdown to its
				// deadline.
				return
			case ev := <-events:
				frame, err := encodeEvent(ev)
				if err != nil {
					slog.Warn("service: encoding event failed",
						"request_id", w.Header().Get(obs.HeaderRequestID), "err", err)
					return
				}
				w.Write(frame)
				// A full buffer dropped events against this subscriber
				// while it stalled: tell it, so it re-fetches the plan
				// instead of trusting the stream to be complete. Drops can
				// only happen with a full buffer, so the wake-up event that
				// carries this notice always exists.
				if n := sub.Lagged(); n > 0 {
					fmt.Fprintf(w, "event: lagged\ndata: {\"dropped\": %d}\n\n", n)
				}
				fl.Flush()
			}
		}
	}))

	mux.HandleFunc("GET /v1/explain/{hash}", s.instrument("explain", func(w http.ResponseWriter, r *http.Request) {
		hash := r.PathValue("hash")
		e, ok := s.Explain(hash)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("service: no explain record for hash %s", hash))
			return
		}
		writeJSON(w, http.StatusOK, explainResponse(e))
	}))

	mux.HandleFunc("GET /v1/healthz", s.instrument("healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, healthzJSON{Status: "ok", Version: s.version, Revision: s.revision})
	}))

	// Replica synchronization (sync.go): GET answers the digest, POST one
	// push-pull exchange. The anti-entropy loop of internal/cluster drives
	// both; a newly (re)joined owner converges by iterating exchanges.
	mux.HandleFunc("GET /v1/sync", s.instrument("sync", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.SyncDigest())
	}))
	mux.HandleFunc("POST /v1/sync", s.instrument("sync", func(w http.ResponseWriter, r *http.Request) {
		var doc SyncRequest
		if !decodeBody(w, r, &doc) {
			return
		}
		writeJSON(w, http.StatusOK, s.SyncExchange(doc))
	}))

	// The span ring: always mounted (it answers "enabled": false when
	// tracing is off), so probing the endpoint needs no special-casing.
	mux.Handle("GET /debug/requests", s.tracer.Handler())

	mux.HandleFunc("GET /v1/stats", s.instrument("stats", func(w http.ResponseWriter, r *http.Request) {
		st := s.Stats()
		writeJSON(w, http.StatusOK, statsJSON{
			CacheHits:        st.Cache.Hits,
			CacheMisses:      st.Cache.Misses,
			CacheCoalesced:   st.Cache.Coalesced,
			CacheEvictions:   st.Cache.Evictions,
			CacheLen:         st.Cache.Len,
			CacheCap:         st.Cache.Cap,
			InFlight:         st.Cache.InFlight,
			PlanRequests:     st.PlanRequests,
			DriftRequests:    st.DriftRequests,
			Rejected:         st.Rejected,
			Solves:           st.Solves,
			Registered:       st.Registered,
			QueueDepth:       st.QueueDepth,
			Workers:          st.Workers,
			Persistent:       st.Persistent,
			StoreWrites:      st.Store.Writes,
			StoreLoaded:      st.Store.Loaded,
			StoreSkipped:     st.Store.Skipped,
			StoreQuarantined: st.Store.Quarantined,
			SyncInstances:    st.Sync.AcceptedInstances,
			SyncEntries:      st.Sync.AcceptedEntries,
			SyncDuplicates:   st.Sync.Duplicates,
			SyncRejected:     st.Sync.Rejected,
			SyncConflicts:    st.Sync.Conflicts,
			SyncBytesIn:      st.Sync.BytesIn,
			SyncBytesOut:     st.Sync.BytesOut,
			Subscribers:      st.Subscribers,
			EventsPublished:  st.EventsPublished,
			EventsDropped:    st.EventsDropped,
			MemoHits:         st.MemoHits,
			MemoMisses:       st.MemoMisses,
			MemoLen:          st.MemoLen,
			MemoEvictions:    st.MemoEvictions,
			Shed:             st.Shed,
			Pending:          st.Pending,
			MaxPending:       st.MaxPending,
			CacheSeeded:      st.Cache.Seeded,
			SolverExpanded:   st.SolverExpanded,
			SolverPruned:     st.SolverPruned,
			SolverEvaluated:  st.SolverEvaluated,
			Version:          st.Version,
			Revision:         st.Revision,
		})
	}))

	// The middleware is the request-ID and span boundary: it echoes
	// X-Filterd-Request-Id before any handler runs (so sheds, errors and
	// SSE streams all carry it) and passes through untouched when an outer
	// layer — the cluster router — already owns the request's span.
	return obs.Middleware(s.tracer, mux)
}

// decodePlanRequest resolves one wire request into a service Request.
func decodePlanRequest(doc planRequestJSON) (Request, error) {
	if len(doc.Instance) == 0 {
		return Request{}, fmt.Errorf("service: request has no instance")
	}
	var app workflow.App
	if err := json.Unmarshal(doc.Instance, &app); err != nil {
		return Request{}, fmt.Errorf("service: parsing instance: %w", err)
	}
	return doc.planParamsJSON.request(&app)
}

func decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(into); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("service: parsing request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// The status line is already out; log so truncated responses are
		// diagnosable server-side. The id was echoed onto the response
		// headers by obs.Middleware before any handler ran.
		slog.Warn("service: encoding response failed",
			"request_id", w.Header().Get(obs.HeaderRequestID), "err", err)
	}
}

// retryAfterSeconds is the Retry-After value of shed (429) and
// shutting-down (503) responses: bursts are short-lived relative to
// solves, so one second is a reasonable first backoff.
const retryAfterSeconds = "1"

func httpError(w http.ResponseWriter, code int, err error) {
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", retryAfterSeconds)
	}
	// The id repeats in the body for support correlation: error reports
	// usually quote the body, not the headers. obs.Middleware set the
	// header before any handler ran; "" only for un-middlewared embeds.
	writeJSON(w, code, map[string]string{
		"error":      err.Error(),
		"request_id": w.Header().Get(obs.HeaderRequestID),
	})
}
