package service

import (
	"fmt"
	"net/http"
	"testing"
)

// TestHTTPPatchErrorPaths sweeps the PATCH /v1/instance/{hash} failure
// modes: every malformed body fails with the right status, fails cleanly
// (no cache entry, no event, no registry growth) and leaves the instance
// re-plannable.
func TestHTTPPatchErrorPaths(t *testing.T) {
	s, ts := newTestAPI(t)
	hash, target, _ := planAndTarget(t, s)
	before := s.Stats()

	cases := []struct {
		name, body string
		wantStatus int
	}{
		{"not JSON", `{{{`, http.StatusBadRequest},
		{"truncated JSON", `{"updates": [{"service":`, http.StatusBadRequest},
		{"bad cost rational", fmt.Sprintf(`{"updates": [{"service": %q, "cost": "7/0"}]}`, target), http.StatusBadRequest},
		{"bad selectivity rational", fmt.Sprintf(`{"updates": [{"service": %q, "selectivity": "x"}]}`, target), http.StatusBadRequest},
		{"unknown model", fmt.Sprintf(`{"model": "bogus", "updates": [{"service": %q, "cost": "2"}]}`, target), http.StatusBadRequest},
		{"no updates", `{"updates": []}`, http.StatusUnprocessableEntity},
		{"unknown service", `{"updates": [{"service": "nope", "cost": "2"}]}`, http.StatusUnprocessableEntity},
		{"update changes nothing", fmt.Sprintf(`{"updates": [{"service": %q}]}`, target), http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		resp := doJSON(t, "PATCH", ts.URL+"/v1/instance/"+hash, tc.body, nil)
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.wantStatus)
		}
	}
	// Unknown hash stays 404 whatever the body.
	resp := doJSON(t, "PATCH", ts.URL+"/v1/instance/0000", `{"updates": [{"service": "a", "cost": "2"}]}`, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown hash: status %d, want 404", resp.StatusCode)
	}

	after := s.Stats()
	if after.Cache.Len != before.Cache.Len {
		t.Errorf("failed PATCHes changed the cache: %d -> %d entries", before.Cache.Len, after.Cache.Len)
	}
	if after.Registered != before.Registered {
		t.Errorf("failed PATCHes registered instances: %d -> %d", before.Registered, after.Registered)
	}
	if after.EventsPublished != before.EventsPublished {
		t.Errorf("failed PATCHes published events")
	}

	// The hash still drifts fine after the failure sweep.
	ok := doJSON(t, "PATCH", ts.URL+"/v1/instance/"+hash,
		fmt.Sprintf(`{"model": "overlap", "objective": "period", "updates": [{"service": %q, "cost": "5"}]}`, target), nil)
	ok.Body.Close()
	if ok.StatusCode != http.StatusOK {
		t.Errorf("valid PATCH after the sweep: status %d", ok.StatusCode)
	}
}
