//go:build !race

package service

const raceEnabled = false
