package service

// Operational metrics of the planning service (DESIGN.md §4): the
// Prometheus-text surface served at GET /metrics by Handler. The JSON
// counters of /v1/stats stay for compatibility; this is the layer
// collectors scrape. Hot-path instruments (request latency, solver wall
// time) are real histograms updated inline; everything already tracked
// by an existing counter — cache, memo, store, subscription stats — is
// published as a callback read at scrape time, so there is exactly one
// source of truth per number.

import "repro/internal/metrics"

// initMetrics registers the server's families into its registry. Called
// once from New; a second server must use its own registry (names
// register once).
func (s *Server) initMetrics() {
	m := s.metrics
	s.mRequests = m.CounterVec("filterd_http_requests_total",
		"HTTP requests served, by route and status code.", "route", "code")
	s.mLatency = m.HistogramVec("filterd_http_request_seconds",
		"HTTP request latency in seconds, by route.", nil, "route")
	s.mSolveSeconds = m.Histogram("filterd_solve_seconds",
		"Solver wall time in seconds per executed solve (cache hits excluded).", nil)

	// Per-phase latency histograms of the request spine (obs.Phase). The
	// children are resolved once: Vec.With builds a lookup key per call,
	// and canon/cache observe on every request including cache hits, so
	// the hot path must stay allocation-free.
	phases := m.HistogramVec("filterd_phase_seconds",
		"Request phase latency in seconds (canon, cache, queue, solve, orchestrate, store).",
		nil, "phase")
	s.mPhaseCanon = phases.With("canon")
	s.mPhaseCache = phases.With("cache")
	s.mPhaseQueue = phases.With("queue")
	s.mPhaseSolve = phases.With("solve")
	s.mPhaseOrch = phases.With("orchestrate")
	s.mPhaseStore = phases.With("store")

	// Solver search-effort totals: the branch-and-bound evidence counters,
	// summed across every executed solve.
	m.CounterFunc("filterd_solver_nodes_expanded_total",
		"Branch-and-bound partial assignments whose bound was computed, summed over all solves.",
		func() float64 { return float64(s.nodesExpanded.Load()) })
	m.CounterFunc("filterd_solver_nodes_pruned_total",
		"Branch-and-bound subtrees discarded by the incumbent bound, summed over all solves.",
		func() float64 { return float64(s.nodesPruned.Load()) })
	m.CounterFunc("filterd_solver_candidates_evaluated_total",
		"Complete candidate graphs whose objective was computed, summed over all solves.",
		func() float64 { return float64(s.candEvaluated.Load()) })

	// Build identity as the Prometheus build-info convention: a constant-1
	// gauge whose labels carry the version and VCS revision.
	m.GaugeVec("filterd_build_info",
		"Build identity: constant 1, labeled with the module version and VCS revision.",
		"version", "revision").With(s.version, s.revision).Set(1)

	m.GaugeFunc("filterd_queue_depth",
		"Solves currently buffered in the intake queue.",
		func() float64 { return float64(len(s.queue)) })
	m.GaugeFunc("filterd_pending_solves",
		"Admitted-but-unfinished solves (queued, waiting for a slot, or running).",
		func() float64 { return float64(s.pending.Load()) })
	m.GaugeFunc("filterd_max_pending",
		"Load-shedding watermark: admissions beyond it are rejected with 429.",
		func() float64 { return float64(s.cfg.MaxPending) })
	m.GaugeFunc("filterd_workers",
		"Solver pool size draining the intake queue.",
		func() float64 { return float64(s.cfg.Workers) })
	m.CounterFunc("filterd_shed_total",
		"Admissions rejected by the MaxPending watermark (HTTP 429).",
		func() float64 { return float64(s.shed.Load()) })

	m.CounterFunc("filterd_plan_requests_total",
		"Plan requests (batch items included).",
		func() float64 { return float64(s.planRequests.Load()) })
	m.CounterFunc("filterd_drift_requests_total",
		"Drift re-planning requests.",
		func() float64 { return float64(s.driftRequests.Load()) })
	m.CounterFunc("filterd_rejected_total",
		"Requests rejected at validation.",
		func() float64 { return float64(s.rejected.Load()) })
	m.CounterFunc("filterd_solves_total",
		"Solver runs actually executed on the pool.",
		func() float64 { return float64(s.solves.Load()) })

	m.CounterFunc("filterd_plancache_hits_total",
		"Plan-cache hits.", func() float64 { return float64(s.cache.Stats().Hits) })
	m.CounterFunc("filterd_plancache_misses_total",
		"Plan-cache misses (solves led).", func() float64 { return float64(s.cache.Stats().Misses) })
	m.CounterFunc("filterd_plancache_coalesced_total",
		"Requests coalesced onto a concurrent identical solve.",
		func() float64 { return float64(s.cache.Stats().Coalesced) })
	m.CounterFunc("filterd_plancache_evictions_total",
		"Plan-cache LRU evictions.", func() float64 { return float64(s.cache.Stats().Evictions) })
	m.CounterFunc("filterd_plancache_seeded_total",
		"Entries warm-loaded from the persistent store at startup.",
		func() float64 { return float64(s.cache.Stats().Seeded) })
	m.GaugeFunc("filterd_plancache_entries",
		"Completed plan-cache entries.", func() float64 { return float64(s.cache.Stats().Len) })
	m.GaugeFunc("filterd_plancache_inflight",
		"Solves currently running under the cache's singleflight.",
		func() float64 { return float64(s.cache.Stats().InFlight) })

	m.CounterFunc("filterd_memo_hits_total",
		"Service-wide orchestration-memo hits.", func() float64 { return float64(s.memo.Hits()) })
	m.CounterFunc("filterd_memo_misses_total",
		"Service-wide orchestration-memo misses.", func() float64 { return float64(s.memo.Misses()) })
	m.GaugeFunc("filterd_memo_entries",
		"Orchestration-memo entries.", func() float64 { return float64(s.memo.Len()) })

	m.GaugeFunc("filterd_subscribers",
		"Open drift-subscription streams.", func() float64 { return float64(s.hub.subscribers()) })
	m.CounterFunc("filterd_subscribe_events_total",
		"Re-plan events delivered to subscribers.",
		func() float64 { return float64(s.hub.published.Load()) })
	m.CounterFunc("filterd_subscribe_dropped_total",
		"Re-plan events lost to full subscriber buffers.",
		func() float64 { return float64(s.hub.dropped.Load()) })

	if s.cfg.Store != nil {
		m.CounterFunc("filterd_store_writes_total",
			"Plans persisted write-through.", func() float64 { return float64(s.cfg.Store.Stats().Writes) })
		m.CounterFunc("filterd_store_write_errors_total",
			"Failed persistence attempts (requests unaffected).",
			func() float64 { return float64(s.cfg.Store.Stats().WriteErrors) })
		m.CounterFunc("filterd_store_quarantined_total",
			"Corrupt entry files renamed .bad at warm-load instead of aborting startup.",
			func() float64 { return float64(s.cfg.Store.Stats().Quarantined) })
	}

	// Replica synchronization (/v1/sync): the anti-entropy merge traffic.
	syncAccepted := m.CounterVec("filterd_sync_accepted_total",
		"Items merged from peers via /v1/sync, by kind.", "kind")
	mSyncInst := syncAccepted.With("instances")
	mSyncEnt := syncAccepted.With("entries")
	m.OnScrape(func() {
		mSyncInst.Set(s.syncAcceptedInstances.Load())
		mSyncEnt.Set(s.syncAcceptedEntries.Load())
	})
	m.CounterFunc("filterd_sync_duplicates_total",
		"Sync imports already present locally.",
		func() float64 { return float64(s.syncDuplicates.Load()) })
	m.CounterFunc("filterd_sync_rejected_total",
		"Sync imports that failed verification (decode or hash mismatch).",
		func() float64 { return float64(s.syncRejected.Load()) })
	m.CounterFunc("filterd_sync_conflicts_total",
		"Sync imports whose key exists locally with a different solution — determinism violations.",
		func() float64 { return float64(s.syncConflicts.Load()) })
	syncBytes := m.CounterVec("filterd_sync_bytes_total",
		"Store-codec entry bytes streamed via /v1/sync, by direction.", "direction")
	mSyncIn := syncBytes.With("in")
	mSyncOut := syncBytes.With("out")
	m.OnScrape(func() {
		mSyncIn.Set(s.syncBytesIn.Load())
		mSyncOut.Set(s.syncBytesOut.Load())
	})
}

// Metrics returns the server's registry — cmd/filterd shares it with the
// cluster router so one /metrics page covers the whole process.
func (s *Server) Metrics() *metrics.Registry { return s.metrics }
