// Package service is the long-running planning service of the repository:
// the in-process core of the filterd daemon (cmd/filterd).
//
// The paper's setting makes a service the natural scaling lever: a plan is
// computed once per (application, model, objective) and reused across
// millions of data sets, so the NP-hard search cost amortizes across
// repeated and slowly-drifting instances. The service implements that
// amortization in three layers:
//
//   - canonical intake: every request's instance is canonicalized (package
//     canon), so permuted listings, unreduced rationals and redundant
//     precedence edges all land on the same content hash;
//   - plan cache: solved plans live in a bounded LRU keyed by canonical
//     hash plus the solve parameters (package plancache), with
//     singleflight deduplication — N concurrent identical requests cost
//     one solve;
//   - drift re-planning: cost/selectivity updates against a registered
//     instance re-solve the drifted instance warm-started by seeding the
//     branch-and-bound incumbent with the old plan re-evaluated on the new
//     numbers (solve.Options.Incumbent), and report old-vs-new objectives.
//
// # One pool, never nested
//
// All solving runs on a single batch-intake queue drained by the worker
// pool of package par — the PR 1 invariant. The service owns the whole
// parallelism budget: Config.Workers goroutines drain the queue and every
// inner solve runs with Workers: 1, so concurrent requests parallelize
// across the pool while no request ever nests a second pool under it. Each
// queued solve is deterministic (fixed canonical instance, serial solver),
// so cached, coalesced and fresh responses for one key are bit-identical —
// and identical to a direct solve.MinPeriod/MinLatency call with the same
// options on the canonical instance.
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/canon"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/orchestrate"
	"repro/internal/par"
	"repro/internal/plan"
	"repro/internal/plancache"
	"repro/internal/rat"
	"repro/internal/solve"
	"repro/internal/store"
	"repro/internal/workflow"
)

// ErrClosed is returned by requests submitted after Close.
var ErrClosed = errors.New("service: server closed")

// ErrOverloaded is returned by solve admissions beyond Config.MaxPending:
// the intake backpressure signal. The HTTP layer maps it to 429 with a
// Retry-After header; the request was shed before touching the queue, so
// nothing about it is cached and an immediate retry is safe (if the
// burst has passed).
var ErrOverloaded = errors.New("service: overloaded")

// Config tunes a Server. The zero value requests defaults.
type Config struct {
	// Workers bounds the solver pool draining the intake queue
	// (0 = runtime.NumCPU()). Inner solves always run serially on one
	// pool worker.
	Workers int
	// CacheSize bounds the plan cache (completed entries; default 256).
	CacheSize int
	// QueueSize bounds the intake queue buffer (default 64).
	QueueSize int
	// MaxServices rejects instances larger than this at validation
	// (default 64) — the exact methods refuse far earlier, but the bound
	// keeps even heuristic requests from monopolizing a worker.
	MaxServices int
	// RegistrySize bounds the drift-target registry (default 1024): the
	// canonical instances drift updates may name. Least-recently-used
	// instances are forgotten when the bound is hit; a drift against a
	// forgotten hash fails and the client re-submits the instance.
	RegistrySize int
	// MemoSize bounds the service-wide orchestration memo (default 4096
	// entries, least-recently-used evicted first): every solve on the pool
	// shares one memo, so requests whose plan searches orchestrate the
	// same weighted subgraphs — drifted variants, batch siblings, symmetric
	// candidates — amortize each other across request boundaries. Sharing
	// is invisible in the responses: the memo key pins every Result-
	// affecting parameter and orchestration is deterministic, so a hit is
	// bit-identical to recomputing.
	MemoSize int
	// MaxPending is the load-shedding watermark: the most admitted-but-
	// unfinished solves (queued, waiting for a queue slot, or running) the
	// server holds before shedding. An admission beyond it fails
	// immediately with ErrOverloaded instead of ballooning goroutines and
	// latency under a burst. 0 = QueueSize + 2×Workers (the queue buffer,
	// a full complement of running solves, and as many again blocked at
	// the queue). Cache hits are never shed — they cost no solver time.
	MaxPending int
	// Metrics, when non-nil, is the registry the server publishes its
	// operational metrics into (request latency, solver wall time, cache
	// and memo counters, queue depth, shed count — served at GET /metrics
	// by Handler). nil creates a private registry, so embedded servers in
	// tests never collide. Share one registry per process at most once:
	// metric names are registered once per server lifetime.
	Metrics *metrics.Registry
	// Store, when non-nil, persists every successful solve write-through
	// and is warm-loaded into the plan cache (and the drift registry) at
	// New, so a restarted server answers previously solved requests as
	// warm hits bit-identical to pre-restart. Persistence failures never
	// fail a request — they only show in the store's counters.
	Store *store.Store
	// Tracer, when non-nil, records per-request spans into its ring
	// (served at GET /debug/requests). nil or a zero-capacity tracer
	// disables recording; request IDs and /v1/explain work regardless.
	Tracer *obs.Tracer
	// Logger, when non-nil, receives the server's structured log events
	// (sheds, store-write failures, encode errors), request_id-correlated.
	// nil discards them — embedded test servers stay silent by default.
	Logger *slog.Logger
	// ExplainSize bounds the per-hash plan-provenance records served at
	// GET /v1/explain/{hash} (default 1024, least-recently-served evicted
	// first).
	ExplainSize int
}

func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.MaxServices <= 0 {
		c.MaxServices = 64
	}
	if c.RegistrySize <= 0 {
		c.RegistrySize = 1024
	}
	if c.MemoSize <= 0 {
		c.MemoSize = 4096
	}
	if c.ExplainSize <= 0 {
		c.ExplainSize = 1024
	}
	return c
}

// Request is one planning request. The zero values of Model, Objective,
// Method and Family are the defaults (Overlap, period, Auto, auto).
type Request struct {
	App       *workflow.App
	Model     plan.Model
	Objective solve.Objective
	Method    solve.Method
	Family    solve.Family
	// MaxExactN, Seed and Restarts forward to solve.Options; they are part
	// of the cache key, since they can change the returned plan.
	MaxExactN int
	Seed      int64
	Restarts  int
}

// solveOptions builds the solver options of a request. Workers is pinned
// to 1: the request already runs on a pool worker (one pool, never
// nested). orchWorkers is the worker budget the orchestration layer's
// order search may borrow — Server.orchWorkers decides when that is safe.
// ctx bounds the search (nil: unbounded) — it can only abort the solve
// with an error, never change its result, so neither it nor orchWorkers
// is part of the cache key (orchestration Results are identical for every
// worker count).
func (r Request) solveOptions(ctx context.Context, orchWorkers int) solve.Options {
	return solve.Options{
		Method:    r.Method,
		Family:    r.Family,
		MaxExactN: r.MaxExactN,
		Seed:      r.Seed,
		Restarts:  r.Restarts,
		Workers:   1,
		Orch:      orchestrate.Options{Workers: orchWorkers},
		Ctx:       ctx,
	}
}

// Response is one planning answer.
type Response struct {
	// Hash is the canonical instance hash; Key the full cache key (hash
	// plus solve parameters).
	Hash string
	Key  string
	// Outcome reports how the request was served: fresh solve, cache hit,
	// or coalesced onto a concurrent identical solve.
	Outcome plancache.Outcome
	// Instance is the canonical form the solution refers to.
	Instance *canon.Instance
	// Solution is the plan, bit-identical to a direct
	// solve.MinPeriod/MinLatency call on Instance.App() with the request's
	// options.
	Solution solve.Solution
}

// Update is one drift delta: new cost and/or selectivity for a named
// service. Nil fields keep the current value.
type Update struct {
	Service     string
	Cost        *rat.Rat
	Selectivity *rat.Rat
}

// DriftReport describes one drift re-planning round trip.
type DriftReport struct {
	OldHash  string
	NewHash  string
	OldValue rat.Rat
	NewValue rat.Rat
	// WarmStart reports whether the old plan re-evaluated on the drifted
	// instance seeded the branch-and-bound incumbent.
	WarmStart bool
	// Incumbent is the seeded value when WarmStart is true.
	Incumbent rat.Rat
	// Response is the drifted instance's plan (cached under the new hash).
	Response Response
}

// Stats is a snapshot of the service counters.
type Stats struct {
	Cache plancache.Stats
	// PlanRequests counts Plan calls (batch items included), DriftRequests
	// the drift re-plannings, Rejected the validation failures, Solves the
	// solver runs actually executed on the pool.
	PlanRequests  int64
	DriftRequests int64
	Rejected      int64
	Solves        int64
	// Registered counts the currently registered drift-target instances
	// (bounded by Config.RegistrySize); QueueDepth the currently queued
	// solves; Workers the pool bound.
	Registered int
	QueueDepth int
	Workers    int
	// Shed counts admissions rejected by the MaxPending watermark;
	// Pending the currently admitted-but-unfinished solves; MaxPending
	// the watermark itself.
	Shed       int64
	Pending    int
	MaxPending int
	// Persistent reports whether a plan store is attached; Store its
	// counters (zero value otherwise).
	Persistent bool
	Store      store.Stats
	// Sync counts the replica-to-replica /v1/sync merges (anti-entropy).
	Sync SyncStats
	// Subscribers counts the currently open drift subscriptions;
	// EventsPublished the re-plan events delivered to them;
	// EventsDropped the events lost to full subscriber buffers.
	Subscribers     int
	EventsPublished int64
	EventsDropped   int64
	// MemoHits/MemoMisses/MemoLen/MemoEvictions are the service-wide
	// orchestration memo counters (Config.MemoSize).
	MemoHits      int64
	MemoMisses    int64
	MemoLen       int
	MemoEvictions int64
	// SolverExpanded/SolverPruned/SolverEvaluated total the branch-and-
	// bound search counters across every solve executed on the pool — the
	// running evidence for the paper's tractability claim, previously
	// computed per solve and dropped.
	SolverExpanded  int64
	SolverPruned    int64
	SolverEvaluated int64
	// Version and Revision identify the running build (obs.BuildInfo).
	Version  string
	Revision string
}

// cacheEntry is the cached value of one key. src is what a later cache
// hit of this entry reports as its plan source: "cache" for entries a
// solve produced, "store" for entries warm-loaded from disk. effort is
// the search-effort record of the producing solve (nil for entries
// persisted before the field existed).
type cacheEntry struct {
	sol    solve.Solution
	inst   *canon.Instance
	src    string
	effort *solve.Effort
}

type task struct {
	fn   func()
	done chan struct{}
}

// Server is the planning service. Create with New, release with Close.
type Server struct {
	cfg   Config
	cache *plancache.Cache[cacheEntry]
	queue chan task

	mu     sync.RWMutex // guards closed
	closed bool
	// closing is the shutdown broadcast that ends open subscription
	// streams: closed by EndSubscriptions (idempotent) and by Close.
	// http.Server.Shutdown waits for active handlers, so without it a
	// connected subscriber would stall every graceful shutdown to its
	// deadline — cmd/filterd wires EndSubscriptions into
	// http.Server.RegisterOnShutdown for exactly that reason.
	closing     chan struct{}
	closingOnce sync.Once
	// registry holds the canonical instances seen, keyed by hash — the
	// targets of drift updates. Bounded LRU (Config.RegistrySize) so a
	// stream of distinct instances cannot grow the daemon without limit.
	registry *plancache.Cache[*canon.Instance]
	// memo is the service-wide orchestration memo every pool solve shares
	// (Config.MemoSize).
	memo *orchestrate.Memo

	wg sync.WaitGroup

	hub hub // drift subscriptions (subscribe.go)

	planRequests  atomic.Int64
	driftRequests atomic.Int64
	rejected      atomic.Int64
	solves        atomic.Int64
	// pending counts admitted-but-unfinished solves; shed the admissions
	// rejected at the MaxPending watermark (backpressure).
	pending atomic.Int64
	shed    atomic.Int64

	// metrics is the operational surface served at GET /metrics;
	// mRequests/mLatency instrument the HTTP routes, mSolveSeconds the
	// solver wall time of every executed solve. The per-phase histogram
	// children are resolved once here: Vec.With builds a map key per call,
	// so the hot path observes through these cached handles instead.
	metrics       *metrics.Registry
	mRequests     *metrics.CounterVec
	mLatency      *metrics.HistogramVec
	mSolveSeconds *metrics.Histogram
	mPhaseCanon   *metrics.Histogram
	mPhaseCache   *metrics.Histogram
	mPhaseQueue   *metrics.Histogram
	mPhaseSolve   *metrics.Histogram
	mPhaseOrch    *metrics.Histogram
	mPhaseStore   *metrics.Histogram

	// Solver search-effort totals across every executed solve, mirrored
	// onto /metrics and /v1/stats (satellite: B&B counters were dropped).
	nodesExpanded atomic.Int64
	nodesPruned   atomic.Int64
	candEvaluated atomic.Int64

	// Replica-sync counters (sync.go): the /v1/sync merge traffic of the
	// anti-entropy loop.
	syncAcceptedInstances atomic.Int64
	syncAcceptedEntries   atomic.Int64
	syncDuplicates        atomic.Int64
	syncRejected          atomic.Int64
	syncConflicts         atomic.Int64
	syncBytesIn           atomic.Int64
	syncBytesOut          atomic.Int64

	// Observability spine: the span tracer (may be nil — every use is
	// nil-safe), the structured logger (never nil after New), the per-hash
	// explain records, and the build identity.
	tracer   *obs.Tracer
	logger   *slog.Logger
	explain  *explainCache
	version  string
	revision string
}

// orchWorkers is the worker budget one inner solve may hand down to the
// orchestration layer's order search. Inner solves always run plan-level
// Workers: 1 on their pool worker; on a single-worker server the rest of
// the machine is idle for the duration of that solve, so the sharded
// order search of internal/orchestrate borrows the whole CPU budget —
// still exactly one level of fan-out at any time (one pool, never
// nested). A wider intake pool serves concurrent requests instead, and
// orchestration stays serial. Either way the response bytes are
// identical: orchestration Results do not depend on the worker count.
func (s *Server) orchWorkers() int {
	if s.cfg.Workers == 1 {
		return par.Workers(0)
	}
	return 1
}

// New starts a server: Config.Workers goroutines begin draining the intake
// queue through the par pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	cfg.Workers = par.Workers(cfg.Workers)
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = cfg.QueueSize + 2*cfg.Workers
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	s := &Server{
		cfg:      cfg,
		cache:    plancache.New[cacheEntry](cfg.CacheSize),
		queue:    make(chan task, cfg.QueueSize),
		registry: plancache.New[*canon.Instance](cfg.RegistrySize),
		memo:     orchestrate.NewMemo(cfg.MemoSize),
		closing:  make(chan struct{}),
		metrics:  cfg.Metrics,
		tracer:   cfg.Tracer,
		logger:   logger,
		explain:  newExplainCache(cfg.ExplainSize),
	}
	s.version, s.revision = obs.BuildInfo()
	s.initMetrics()
	// Warm load: replay the persisted plans into the LRU and the drift
	// registry before the first request, so a restarted replica answers
	// previously solved requests as warm hits bit-identical to
	// pre-restart. Entries the store rejects (corrupt, stale format) are
	// skipped and will simply re-solve on demand. Warm entries report
	// plan source "store" and carry the original solve's effort record.
	if cfg.Store != nil {
		_ = cfg.Store.Load(func(e store.Entry) {
			s.cache.Seed(e.Key, cacheEntry{sol: e.Solution, inst: e.Instance, src: "store", effort: e.Effort})
			s.register(e.Instance)
		})
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		// One pool for the whole server: every worker drains the shared
		// intake queue until Close.
		par.Run(cfg.Workers, cfg.Workers, func(int) {
			for t := range s.queue {
				t.fn()
				close(t.done)
			}
		})
	}()
	return s
}

// Close stops the intake queue and waits for in-flight solves to finish.
// Requests submitted after Close fail with ErrClosed.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.EndSubscriptions()
	s.wg.Wait()
}

// EndSubscriptions terminates every open subscription stream (idempotent;
// Close calls it too). Graceful HTTP shutdown should call it when the
// drain starts, so connected subscribers do not hold Shutdown to its
// deadline.
func (s *Server) EndSubscriptions() {
	s.closingOnce.Do(func() { close(s.closing) })
}

// Closing returns a channel closed when the server shuts down (or
// EndSubscriptions runs) — the termination signal of long-lived
// subscription streams.
func (s *Server) Closing() <-chan struct{} { return s.closing }

// submit runs fn on a pool worker and waits for it. Admission is gated
// by the MaxPending watermark: beyond it the request is shed immediately
// with ErrOverloaded — a burst degrades into fast 429s instead of
// ballooning goroutines and queue latency (shed requests never reach the
// pool, and their errors are never cached). A request whose context dies
// while still queued gives its queue slot back without ever reaching a
// worker; once a worker picked fn up, submit waits for it to finish
// (fn's own solve watches the same context, so a canceled request
// returns promptly with the context error instead of burning the pool).
func (s *Server) submit(ctx context.Context, fn func()) error {
	t := task{fn: fn, done: make(chan struct{})}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	if p := s.pending.Add(1); p > int64(s.cfg.MaxPending) {
		s.pending.Add(-1)
		s.shed.Add(1)
		s.mu.RUnlock()
		s.logger.Warn("solve shed at the backpressure watermark",
			"request_id", obs.From(ctx).ID(), "pending", p-1, "max_pending", s.cfg.MaxPending)
		return fmt.Errorf("%w: %d solves already pending (limit %d)",
			ErrOverloaded, p-1, s.cfg.MaxPending)
	}
	defer s.pending.Add(-1)
	var cancelled <-chan struct{}
	if ctx != nil {
		cancelled = ctx.Done()
	}
	select {
	case s.queue <- t:
	case <-cancelled:
		s.mu.RUnlock()
		return fmt.Errorf("service: request abandoned while queued: %w", ctx.Err())
	}
	s.mu.RUnlock()
	<-t.done
	return nil
}

// validate rejects malformed requests before they reach canonicalization
// or the queue.
func (s *Server) validate(req Request) error {
	if req.App == nil {
		return fmt.Errorf("service: request has no instance")
	}
	if n := req.App.N(); n == 0 {
		return fmt.Errorf("service: empty instance")
	} else if n > s.cfg.MaxServices {
		return fmt.Errorf("service: %d services exceeds the request limit %d", n, s.cfg.MaxServices)
	}
	switch req.Model {
	case plan.Overlap, plan.InOrder, plan.OutOrder:
	default:
		return fmt.Errorf("service: unknown model %v", req.Model)
	}
	switch req.Objective {
	case solve.PeriodObjective, solve.LatencyObjective:
	default:
		return fmt.Errorf("service: unknown objective %v", req.Objective)
	}
	switch req.Method {
	case solve.Auto, solve.GreedyChain, solve.ExactChain, solve.ExactForest,
		solve.ExactDAG, solve.HillClimb, solve.BranchBound:
	default:
		return fmt.Errorf("service: unknown method %v", req.Method)
	}
	switch req.Family {
	case solve.FamilyAuto, solve.FamilyChain, solve.FamilyForest, solve.FamilyDAG:
	default:
		return fmt.Errorf("service: unknown family %v", req.Family)
	}
	if req.MaxExactN < 0 || req.Restarts < 0 {
		return fmt.Errorf("service: negative MaxExactN or Restarts")
	}
	return nil
}

// ctxLive reports whether a request context is still good (nil counts as
// unbounded).
func ctxLive(ctx context.Context) bool {
	return ctx == nil || ctx.Err() == nil
}

// cacheKey is the full identity of a cached plan: canonical instance plus
// every solve parameter that can change the returned Solution.
func cacheKey(hash string, req Request) string {
	return fmt.Sprintf("%s|%s|%s|%s|%s|%d|%d|%d",
		hash, req.Model, req.Objective, req.Method, req.Family,
		req.MaxExactN, req.Seed, req.Restarts)
}

// register remembers a canonical instance as a drift target (refreshing
// its registry recency when already present).
func (s *Server) register(inst *canon.Instance) {
	s.registry.Do(inst.Hash(), func() (*canon.Instance, error) { return inst, nil })
}

// Register remembers a canonical instance as a drift target without
// solving anything. The cluster router registers every instance it routes
// — including those forwarded to a healthy shard owner — so a PATCH that
// fails over to the embedded local service after the owner dies finds its
// target instead of 404ing until the owner returns.
func (s *Server) Register(inst *canon.Instance) {
	if inst != nil {
		s.register(inst)
	}
}

// Instance returns the registered canonical instance for hash, if any.
func (s *Server) Instance(hash string) (*canon.Instance, bool) {
	return s.registry.Get(hash)
}

// Plan canonicalizes the request's instance, serves the plan from the
// cache when present, and otherwise solves it on the pool (concurrent
// identical requests coalesce onto one solve). The instance is registered
// as a drift target.
func (s *Server) Plan(req Request) (Response, error) {
	return s.PlanContext(context.Background(), req)
}

// PlanContext is Plan bounded by a request context: an expired or canceled
// ctx aborts the solve (the searches poll it periodically), the error is
// never cached, and a later request for the same key re-solves cleanly.
// Cache hits are served regardless of ctx — they cost no solver time.
func (s *Server) PlanContext(ctx context.Context, req Request) (Response, error) {
	s.planRequests.Add(1)
	if err := s.validate(req); err != nil {
		s.rejected.Add(1)
		return Response{}, err
	}
	canonStart := time.Now()
	inst, err := canon.Canonicalize(req.App)
	canonDur := time.Since(canonStart)
	obs.From(ctx).Observe(obs.PhaseCanon, canonDur)
	s.mPhaseCanon.Observe(canonDur.Seconds())
	if err != nil {
		s.rejected.Add(1)
		return Response{}, err
	}
	s.register(inst)
	return s.planCanonical(ctx, inst, req, nil)
}

// planCanonical serves an already-canonicalized instance. A non-nil
// incumbent warm-starts the branch-and-bound search; it never changes the
// solution (solve.Options.Incumbent contract), so it is deliberately not
// part of the cache key.
func (s *Server) planCanonical(ctx context.Context, inst *canon.Instance, req Request, incumbent *rat.Rat) (Response, error) {
	span := obs.From(ctx)
	key := cacheKey(inst.Hash(), req)
	span.SetHash(inst.Hash(), key)
retry:
	cacheStart := time.Now()
	val, outcome, err := s.cache.Do(key, func() (cacheEntry, error) {
		var sol solve.Solution
		var solveErr error
		var effort *solve.Effort
		submitted := time.Now()
		submitErr := s.submit(ctx, func() {
			queued := time.Since(submitted)
			s.solves.Add(1)
			start := time.Now()
			opts := req.solveOptions(ctx, s.orchWorkers())
			opts.Incumbent = incumbent
			// Every pool solve shares the server memo: identical weighted
			// subgraphs reached by different requests cost one
			// orchestration.
			opts.Memo = s.memo
			// Introspection: the branch-and-bound counters and the
			// orchestration probe. Both are observational — the service
			// pins Workers: 1, so the counts are deterministic per request
			// (the /v1/explain contract).
			var stats solve.Stats
			probe := &solve.EvalProbe{}
			opts.Stats = &stats
			opts.Probe = probe
			if req.Objective == solve.PeriodObjective {
				sol, solveErr = solve.MinPeriod(inst.App(), req.Model, opts)
			} else {
				sol, solveErr = solve.MinLatency(inst.App(), req.Model, opts)
			}
			solveDur := time.Since(start)
			s.mSolveSeconds.Observe(solveDur.Seconds())
			s.mPhaseQueue.Observe(queued.Seconds())
			s.mPhaseSolve.Observe(solveDur.Seconds())
			orchDur := time.Duration(probe.OrchNanos())
			s.mPhaseOrch.Observe(orchDur.Seconds())
			span.Observe(obs.PhaseQueue, queued)
			span.Observe(obs.PhaseSolve, solveDur)
			span.Observe(obs.PhaseOrchestrate, orchDur)
			if solveErr == nil {
				method := solve.ResolveMethod(inst.App(), req.Objective, opts)
				family := req.Family
				if method == solve.BranchBound {
					family = solve.ResolveFamily(inst.App(), req.Objective, req.Family)
				}
				effort = &solve.Effort{
					Method:     method,
					Family:     family,
					Search:     stats,
					Orch:       probe.Orch(),
					Evals:      probe.Evals(),
					MemoHits:   probe.MemoHits(),
					QueueNanos: int64(queued),
					SolveNanos: int64(solveDur),
					OrchNanos:  probe.OrchNanos(),
				}
				s.nodesExpanded.Add(stats.Expanded)
				s.nodesPruned.Add(stats.Pruned)
				s.candEvaluated.Add(stats.Evaluated)
			}
		})
		if submitErr != nil {
			return cacheEntry{}, submitErr
		}
		if solveErr != nil {
			return cacheEntry{}, solveErr
		}
		// Write-through persistence: the entry is on disk before the
		// response leaves, so a restart after this point answers the key
		// warm. A failed persist only shows in the store counters (and
		// the log).
		if s.cfg.Store != nil {
			storeStart := time.Now()
			if err := s.cfg.Store.Put(store.Entry{Key: key, Instance: inst, Solution: sol, Effort: effort}); err != nil {
				s.logger.Warn("store write failed",
					"request_id", span.ID(), "key", key, "err", err)
			}
			storeDur := time.Since(storeStart)
			s.mPhaseStore.Observe(storeDur.Seconds())
			span.Observe(obs.PhaseStore, storeDur)
		}
		return cacheEntry{sol: sol, inst: inst, src: "cache", effort: effort}, nil
	})
	cacheDur := time.Since(cacheStart)
	s.mPhaseCache.Observe(cacheDur.Seconds())
	span.Observe(obs.PhaseCache, cacheDur)
	if err != nil {
		// A coalesced waiter inherits the LEADING request's error — and a
		// context error there says the leader's client died, not ours.
		// The failed entry is already gone from the cache, so a live
		// request simply retries: it hits, coalesces onto another
		// in-flight solve, or becomes the leader under its own context.
		// (A dead own context never loops: ctxLive is false.)
		if ctxLive(ctx) && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			goto retry
		}
		return Response{}, err
	}
	// Provenance: where this answer came from. A fresh or coalesced solve
	// is "solve"; a hit reports what produced the entry ("cache" for a
	// prior solve this process, "store" for a warm-loaded plan); a router
	// local-failover overrides either — the answer is identical, the
	// serving layer is the story.
	source := "solve"
	if outcome == plancache.Hit {
		source = val.src
	}
	if obs.IsFailover(ctx) {
		source = "failover"
	}
	span.SetOutcome(outcome.String(), source)
	if e := val.effort; e != nil {
		span.SetSolver(e.Search.Expanded, e.Search.Pruned, e.Evals, e.MemoHits)
	}
	s.explain.record(inst.Hash(), key, span.ID(), req, outcome.String(), source, val)
	return Response{
		Hash:     inst.Hash(),
		Key:      key,
		Outcome:  outcome,
		Instance: val.inst,
		Solution: val.sol,
	}, nil
}

// BatchResult is one item of a PlanBatch answer.
type BatchResult struct {
	Response Response
	Err      error
}

// PlanBatch submits every request concurrently (the pool bounds the actual
// parallelism) and returns the results in request order. Identical
// requests within one batch coalesce to a single solve.
func (s *Server) PlanBatch(reqs []Request) []BatchResult {
	return s.PlanBatchContext(context.Background(), reqs)
}

// PlanBatchContext is PlanBatch under one shared request context: a dead
// client abandons every queued item and aborts the in-flight solves.
func (s *Server) PlanBatchContext(ctx context.Context, reqs []Request) []BatchResult {
	out := make([]BatchResult, len(reqs))
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			out[i].Response, out[i].Err = s.PlanContext(ctx, req)
		}(i, req)
	}
	wg.Wait()
	return out
}

// applyUpdates builds the drifted application: the canonical app of inst
// with the updated costs/selectivities, precedence unchanged.
func applyUpdates(app *workflow.App, updates []Update) (*workflow.App, error) {
	if len(updates) == 0 {
		return nil, fmt.Errorf("service: drift request has no updates")
	}
	services := app.Services()
	for _, u := range updates {
		i := app.IndexOf(u.Service)
		if i < 0 {
			return nil, fmt.Errorf("service: drift update names unknown service %q", u.Service)
		}
		if u.Cost == nil && u.Selectivity == nil {
			return nil, fmt.Errorf("service: drift update for %q changes nothing", u.Service)
		}
		if u.Cost != nil {
			services[i].Cost = *u.Cost
		}
		if u.Selectivity != nil {
			services[i].Selectivity = *u.Selectivity
		}
	}
	return workflow.New(services, app.Precedence().Edges())
}

// remapGraph rebuilds the execution graph of oldSol on the drifted
// canonical app: edges are carried over by service NAME, because
// canonicalization may order the drifted services differently.
func remapGraph(oldApp, newApp *workflow.App, g *plan.ExecGraph) (*plan.ExecGraph, error) {
	var edges [][2]int
	for _, e := range g.Graph().Edges() {
		u := newApp.IndexOf(oldApp.Name(e[0]))
		v := newApp.IndexOf(oldApp.Name(e[1]))
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("service: drifted instance lost service %q or %q",
				oldApp.Name(e[0]), oldApp.Name(e[1]))
		}
		edges = append(edges, [2]int{u, v})
	}
	return plan.Build(newApp, edges)
}

// familyMember reports whether eg belongs to the structural family the
// request's branch-and-bound search will enumerate — the precondition for
// using its re-evaluated objective as a warm-start incumbent.
func familyMember(eg *plan.ExecGraph, req Request, app *workflow.App) bool {
	switch solve.ResolveFamily(app, req.Objective, req.Family) {
	case solve.FamilyChain:
		return eg.IsChain()
	case solve.FamilyForest:
		return eg.IsForest()
	default:
		return true // every plan is a DAG
	}
}

// Drift applies cost/selectivity updates to a registered instance and
// re-plans. When the old plan is cached and the request uses branch and
// bound, the old execution graph is re-evaluated on the drifted numbers
// and its objective seeds the incumbent (solve.Options.Incumbent) — a
// certified-achievable warm start, so the re-plan is bit-identical to a
// cold solve of the drifted instance while pruning from the first
// expansion. The report carries both objectives; the drifted instance is
// registered under its new hash.
func (s *Server) Drift(hash string, updates []Update, req Request) (DriftReport, error) {
	return s.DriftContext(context.Background(), hash, updates, req)
}

// DriftContext is Drift bounded by a request context (see PlanContext).
// A successful re-plan whose objective differs from the old one is
// published to every subscriber of hash (see Subscribe) — exactly one
// event per PATCH per subscriber.
func (s *Server) DriftContext(ctx context.Context, hash string, updates []Update, req Request) (DriftReport, error) {
	s.driftRequests.Add(1)
	oldInst, ok := s.Instance(hash)
	if !ok {
		s.rejected.Add(1)
		return DriftReport{}, fmt.Errorf("service: no registered instance with hash %s", hash)
	}
	req.App = oldInst.App()
	if err := s.validate(req); err != nil {
		s.rejected.Add(1)
		return DriftReport{}, err
	}

	newApp, err := applyUpdates(oldInst.App(), updates)
	if err != nil {
		s.rejected.Add(1)
		return DriftReport{}, err
	}
	newInst, err := canon.Canonicalize(newApp)
	if err != nil {
		s.rejected.Add(1)
		return DriftReport{}, err
	}

	// The old objective: served from cache when present, solved otherwise
	// (the drift report always compares old vs new).
	oldResp, err := s.planCanonical(ctx, oldInst, req, nil)
	if err != nil {
		return DriftReport{}, err
	}

	report := DriftReport{
		OldHash:  oldInst.Hash(),
		NewHash:  newInst.Hash(),
		OldValue: oldResp.Solution.Value,
	}

	// Warm start: re-evaluate the old plan on the drifted instance. Only
	// branch and bound consumes the seed, and only a family-member graph
	// certifies a family-achievable value.
	var incumbent *rat.Rat
	if req.Method == solve.BranchBound {
		if eg, err := remapGraph(oldInst.App(), newInst.App(), oldResp.Solution.Graph); err == nil {
			if familyMember(eg, req, newInst.App()) {
				// This re-evaluation runs on the request goroutine, off
				// the intake pool — the pool worker may be mid-solve with
				// the borrowed orchestration budget, so the budget here is
				// pinned serial (one layer of fan-out at a time).
				reOpts := req.solveOptions(ctx, 1)
				reOpts.Memo = s.memo
				if re, err := solve.Reevaluate(eg, req.Model, req.Objective, reOpts); err == nil {
					v := re.Value
					incumbent = &v
					report.WarmStart = true
					report.Incumbent = v
				}
			}
		}
	}

	newReq := req
	newReq.App = newInst.App()
	newResp, err := s.planCanonical(ctx, newInst, newReq, incumbent)
	if err != nil {
		return DriftReport{}, err
	}
	s.register(newInst)
	report.NewValue = newResp.Solution.Value
	report.Response = newResp
	// The streaming half of the re-planning story: a re-plan that moved
	// the objective notifies every subscriber of the PATCHed hash.
	if !report.NewValue.Equal(report.OldValue) {
		s.hub.publish(hash, Event{
			Hash:     hash,
			NewHash:  report.NewHash,
			OldValue: report.OldValue,
			NewValue: report.NewValue,
			NewApp:   newInst.App(),
		})
	}
	return report, nil
}

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	registered := s.registry.Stats().Len
	st := Stats{
		Cache:           s.cache.Stats(),
		PlanRequests:    s.planRequests.Load(),
		DriftRequests:   s.driftRequests.Load(),
		Rejected:        s.rejected.Load(),
		Solves:          s.solves.Load(),
		Registered:      registered,
		QueueDepth:      len(s.queue),
		Workers:         s.cfg.Workers,
		Shed:            s.shed.Load(),
		Pending:         int(s.pending.Load()),
		MaxPending:      s.cfg.MaxPending,
		Subscribers:     s.hub.subscribers(),
		EventsPublished: s.hub.published.Load(),
		EventsDropped:   s.hub.dropped.Load(),
		MemoHits:        s.memo.Hits(),
		MemoMisses:      s.memo.Misses(),
		MemoLen:         s.memo.Len(),
		MemoEvictions:   s.memo.Evictions(),
		SolverExpanded:  s.nodesExpanded.Load(),
		SolverPruned:    s.nodesPruned.Load(),
		SolverEvaluated: s.candEvaluated.Load(),
		Sync:            s.SyncStats(),
		Version:         s.version,
		Revision:        s.revision,
	}
	if s.cfg.Store != nil {
		st.Persistent = true
		st.Store = s.cfg.Store.Stats()
	}
	return st
}
