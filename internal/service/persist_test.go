package service

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/store"
)

// planBody posts one /v1/plan request and returns status and raw body.
func planBody(t *testing.T, url, instance, params string) (int, string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/plan", "application/json",
		strings.NewReader(fmt.Sprintf(`{"instance": %s%s}`, instance, params)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestRestartServesWarmBitIdenticalResponses is acceptance criterion (a):
// a replica restarted over a populated data directory answers every
// previously cached request warm (outcome: hit), with HTTP response bytes
// identical to the pre-restart answer.
func TestRestartServesWarmBitIdenticalResponses(t *testing.T) {
	dir := t.TempDir()
	open := func() (*Server, *httptest.Server) {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		s := New(Config{Workers: 2, Store: st})
		ts := httptest.NewServer(Handler(s))
		return s, ts
	}

	// Requests across instances, models and methods: each is one
	// persisted cache key.
	requests := []struct{ instance, params string }{
		{string(readTestdata(t, "mixed6.json")), `, "model": "overlap", "objective": "period"`},
		{string(readTestdata(t, "mixed6.json")), `, "model": "inorder", "objective": "period", "method": "bnb"`},
		{string(readTestdata(t, "webquery8.json")), `, "model": "overlap", "objective": "latency"`},
	}

	s1, ts1 := open()
	warm := make([]string, len(requests))
	for i, rq := range requests {
		if code, _ := planBody(t, ts1.URL, rq.instance, rq.params); code != http.StatusOK {
			t.Fatalf("request %d: cold status %d", i, code)
		}
		// The warm repeat is the reference: its bytes say outcome "hit",
		// exactly what the restarted replica must reproduce.
		code, body := planBody(t, ts1.URL, rq.instance, rq.params)
		if code != http.StatusOK {
			t.Fatalf("request %d: warm status %d", i, code)
		}
		warm[i] = body
	}
	preStats := s1.Stats()
	if !preStats.Persistent || preStats.Store.Writes != int64(len(requests)) {
		t.Fatalf("store stats before restart: %+v", preStats.Store)
	}
	ts1.Close()
	s1.Close()

	// Restart: a fresh server over the same directory.
	s2, ts2 := open()
	defer ts2.Close()
	defer s2.Close()
	if st := s2.Stats(); st.Store.Loaded != int64(len(requests)) || st.Store.Skipped != 0 {
		t.Fatalf("warm-load stats after restart: %+v", st.Store)
	}
	for i, rq := range requests {
		code, body := planBody(t, ts2.URL, rq.instance, rq.params)
		if code != http.StatusOK {
			t.Fatalf("request %d after restart: status %d", i, code)
		}
		if body != warm[i] {
			t.Errorf("request %d: post-restart response differs from pre-restart bytes:\n%s\nvs\n%s", i, body, warm[i])
		}
	}
	if st := s2.Stats(); st.Solves != 0 {
		t.Errorf("restarted replica ran %d solves for warm-loaded keys", st.Solves)
	}

	// The drift registry was warm-loaded too: a PATCH against a
	// pre-restart hash succeeds without re-submitting the instance.
	var first planResponseJSON
	doJSON(t, "POST", ts2.URL+"/v1/plan",
		fmt.Sprintf(`{"instance": %s, "model": "overlap", "objective": "period"}`, requests[0].instance), &first)
	target := first.Graph.Services[0]
	resp := doJSON(t, "PATCH", ts2.URL+"/v1/instance/"+first.Hash,
		fmt.Sprintf(`{"model": "overlap", "objective": "period", "updates": [{"service": %q, "cost": "99"}]}`, target), nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("drift against a warm-loaded hash: status %d", resp.StatusCode)
	}
}

// TestRestartWithColdDirSolvesFresh: an empty data directory is not an
// error — the replica simply starts cold.
func TestRestartWithColdDirSolvesFresh(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Workers: 1, Store: st})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()
	code, _ := planBody(t, ts.URL, string(readTestdata(t, "mixed6.json")), `, "model": "overlap"`)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if got := s.Stats(); got.Solves != 1 || got.Store.Loaded != 0 {
		t.Errorf("stats %+v", got)
	}
}
