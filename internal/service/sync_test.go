package service

// The /v1/sync merge semantics: push-pull exchanges converge two
// replicas' registries and caches, imports are verified (a forged hash
// or torn entry never lands), duplicates and conflicts are counted —
// the service half of the anti-entropy loop (internal/cluster drives
// the other half).

import (
	"encoding/json"
	"sort"
	"testing"

	"repro/internal/gen"
	"repro/internal/plan"
	"repro/internal/plancache"
	"repro/internal/rat"
	"repro/internal/solve"
)

// exchangeBothWays emulates one full push-pull gossip round from a to b:
// a POSTs its digest, imports b's answer, and pushes what b wanted —
// exactly the cluster.Gossip exchange, minus the wire.
func exchangeBothWays(a, b *Server) {
	resp := b.SyncExchange(SyncRequest{Digest: a.SyncDigest()})
	for _, si := range resp.Instances {
		a.ImportInstance(si)
	}
	for _, e := range resp.Entries {
		a.ImportEntry(e)
	}
	if len(resp.Want.Hashes) == 0 && len(resp.Want.Keys) == 0 {
		return
	}
	b.SyncExchange(SyncRequest{
		Digest:    a.SyncDigest(),
		Instances: a.ExportInstances(resp.Want.Hashes),
		Entries:   a.ExportEntries(resp.Want.Keys),
	})
}

// sortedDigest normalizes a digest for comparison.
func sortedDigest(d SyncDigest) SyncDigest {
	sort.Strings(d.Hashes)
	sort.Strings(d.Keys)
	return d
}

// TestSyncExchangeConvergesTwoReplicas: each replica solves a different
// instance; after one push-pull round both hold both, and the receiving
// replica's answer for the synced plan is a warm hit, bit-identical to
// the solver's.
func TestSyncExchangeConvergesTwoReplicas(t *testing.T) {
	a := newTestServer(t, Config{Workers: 2})
	b := newTestServer(t, Config{Workers: 2})

	reqA := Request{App: gen.App(gen.NewRand(1), 4, gen.Mixed), Model: plan.Overlap, Objective: solve.PeriodObjective}
	reqB := Request{App: gen.App(gen.NewRand(2), 5, gen.Filtering), Model: plan.InOrder, Objective: solve.LatencyObjective}
	respA, err := a.Plan(reqA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Plan(reqB); err != nil {
		t.Fatal(err)
	}

	exchangeBothWays(a, b)

	da, db := sortedDigest(a.SyncDigest()), sortedDigest(b.SyncDigest())
	aj, _ := json.Marshal(da)
	bj, _ := json.Marshal(db)
	if string(aj) != string(bj) {
		t.Fatalf("digests disagree after one round:\n%s\nvs\n%s", aj, bj)
	}
	if len(da.Hashes) != 2 || len(da.Keys) != 2 {
		t.Fatalf("converged digest %s, want 2 hashes / 2 keys", aj)
	}

	// B answers A's instance warm — the synced entry, not a re-solve.
	got, err := b.Plan(reqA)
	if err != nil {
		t.Fatal(err)
	}
	if got.Outcome != plancache.Hit {
		t.Errorf("synced plan served with outcome %s, want hit", got.Outcome)
	}
	if got := fingerprint(t, got.Solution); got != fingerprint(t, respA.Solution) {
		t.Error("synced answer differs from the origin replica's")
	}

	stA, stB := a.SyncStats(), b.SyncStats()
	if stA.AcceptedInstances != 1 || stA.AcceptedEntries != 1 {
		t.Errorf("a sync stats %+v", stA)
	}
	if stB.AcceptedInstances != 1 || stB.AcceptedEntries != 1 {
		t.Errorf("b sync stats %+v", stB)
	}
	if stA.BytesIn == 0 || stB.BytesIn == 0 || stA.BytesOut == 0 || stB.BytesOut == 0 {
		t.Errorf("sync byte counters did not move: a=%+v b=%+v", stA, stB)
	}

	// A second round moves nothing: the exchange is idempotent.
	resp := b.SyncExchange(SyncRequest{Digest: a.SyncDigest()})
	if len(resp.Instances) != 0 || len(resp.Entries) != 0 ||
		len(resp.Want.Hashes) != 0 || len(resp.Want.Keys) != 0 {
		t.Errorf("second round still had traffic: %+v", resp)
	}
}

// TestSyncPropagatesDriftState: a PATCH on one replica (new instance, new
// plan under the new hash) reaches the co-owner in one round — the
// property that makes drift survive the PATCHed owner's loss.
func TestSyncPropagatesDriftState(t *testing.T) {
	a := newTestServer(t, Config{Workers: 2})
	b := newTestServer(t, Config{Workers: 2})

	req := Request{App: gen.App(gen.NewRand(3), 4, gen.Mixed), Model: plan.Overlap, Objective: solve.PeriodObjective}
	planned, err := a.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Plan(req); err != nil {
		t.Fatal(err)
	}
	exchangeBothWays(a, b)

	cost := rat.New(99, 1)
	drift, err := a.Drift(planned.Hash, []Update{{Service: planned.Instance.App().Name(0), Cost: &cost}}, req)
	if err != nil {
		t.Fatal(err)
	}
	if drift.NewHash == planned.Hash {
		t.Fatal("drift did not move the hash")
	}

	exchangeBothWays(a, b)

	// B now knows the drifted instance: a PATCH against the NEW hash on B
	// succeeds without B ever having seen the original PATCH.
	if _, err := b.Drift(drift.NewHash, []Update{{Service: planned.Instance.App().Name(0), Cost: &cost}}, req); err != nil {
		t.Fatalf("co-owner cannot PATCH the synced drift target: %v", err)
	}
}

// TestImportRejectsForgedAndTorn: a hash that does not recompute, an
// unparseable instance, and a torn entry are rejected and counted —
// never merged.
func TestImportRejectsForgedAndTorn(t *testing.T) {
	a := newTestServer(t, Config{Workers: 2})
	b := newTestServer(t, Config{Workers: 2})
	req := Request{App: gen.App(gen.NewRand(4), 4, gen.Mixed), Model: plan.Overlap, Objective: solve.PeriodObjective}
	planned, err := a.Plan(req)
	if err != nil {
		t.Fatal(err)
	}

	exported := a.ExportInstances([]string{planned.Hash})
	if len(exported) != 1 {
		t.Fatalf("exported %d instances", len(exported))
	}
	forged := exported[0]
	forged.Hash = "0000000000000000000000000000000000000000000000000000000000000000"
	if err := b.ImportInstance(forged); err == nil {
		t.Error("forged instance hash imported")
	}
	if err := b.ImportInstance(SyncInstance{Hash: "x", Instance: []byte(`{"not":`)}); err == nil {
		t.Error("unparseable instance imported")
	}

	entries := a.ExportEntries([]string{planned.Key})
	if len(entries) != 1 {
		t.Fatalf("exported %d entries", len(entries))
	}
	torn := entries[0][:len(entries[0])/2]
	if err := b.ImportEntry(torn); err == nil {
		t.Error("torn entry imported")
	}

	if st := b.SyncStats(); st.Rejected != 3 || st.AcceptedInstances != 0 || st.AcceptedEntries != 0 {
		t.Errorf("sync stats %+v, want 3 rejected and nothing accepted", st)
	}
	if d := b.SyncDigest(); len(d.Hashes) != 0 || len(d.Keys) != 0 {
		t.Errorf("rejected imports left state behind: %+v", d)
	}
}

// TestImportCountsDuplicatesAndConflicts: re-importing held state is a
// duplicate; an entry whose solution value disagrees with the local one
// for the same key is a conflict and keeps the local entry.
func TestImportCountsDuplicatesAndConflicts(t *testing.T) {
	a := newTestServer(t, Config{Workers: 2})
	b := newTestServer(t, Config{Workers: 2})
	req := Request{App: gen.App(gen.NewRand(5), 4, gen.Mixed), Model: plan.Overlap, Objective: solve.PeriodObjective}
	planned, err := a.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Plan(req); err != nil {
		t.Fatal(err)
	}

	entries := a.ExportEntries([]string{planned.Key})
	if err := b.ImportEntry(entries[0]); err != nil {
		t.Fatalf("identical duplicate rejected: %v", err)
	}
	st := b.SyncStats()
	if st.Duplicates != 1 || st.Conflicts != 0 {
		t.Fatalf("after duplicate: %+v", st)
	}

	// A conflicting entry: same key, tampered objective value. Decode
	// verifies the instance hash, not the solution, so the import reaches
	// the conflict check — which must keep the local entry.
	var doc map[string]any
	if err := json.Unmarshal(entries[0], &doc); err != nil {
		t.Fatal(err)
	}
	doc["value"] = "1000000"
	tampered, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.ImportEntry(tampered); err == nil {
		t.Error("conflicting entry imported silently")
	}
	if st := b.SyncStats(); st.Conflicts != 1 {
		t.Errorf("after conflict: %+v", st)
	}
	got, err := b.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Outcome != plancache.Hit || !got.Solution.Value.Equal(planned.Solution.Value) {
		t.Errorf("local entry lost to the conflicting import: %s/%s", got.Outcome, got.Solution.Value)
	}
}
