package service

// The replica-to-replica synchronization surface behind POST /v1/sync
// (DESIGN.md §4): bulk export/import of the two pieces of state a shard
// owner accumulates that its co-owners need to serve in its place —
//
//   - the drift registry: which canonical instances may be PATCHed, so a
//     failover PATCH finds its target instead of 404ing;
//   - solved plans: cache entries in the store codec (store.Encode), so
//     a co-owner answers warm what its peer already solved, including
//     the re-planned entries a drift PATCH produced.
//
// Determinism makes the merge trivial: a canonical hash names exactly one
// instance and a cache key exactly one solution, so "sync" is set union —
// no vector clocks, no last-writer-wins, no reconciliation. An import
// whose bytes disagree with their claimed identity (hash mismatch,
// decode failure) is rejected and counted; a key both sides already hold
// with different solution values would falsify the determinism invariant
// and is counted as a conflict (and kept local — the local entry already
// served clients).
//
// The anti-entropy loop driving this surface lives in internal/cluster
// (Gossip); the service only answers digests and merges imports.

import (
	"encoding/json"
	"fmt"

	"repro/internal/canon"
	"repro/internal/store"
	"repro/internal/workflow"
)

// SyncDigest summarizes the syncable state of a replica: the canonical
// hashes registered as drift targets and the cache keys of the completed
// plan entries.
type SyncDigest struct {
	Hashes []string `json:"hashes"`
	Keys   []string `json:"keys"`
}

// SyncInstance is one registry entry on the wire: the canonical
// application document plus the hash the sender claims for it. The
// receiver re-canonicalizes and rejects a mismatch.
type SyncInstance struct {
	Hash     string          `json:"hash"`
	Instance json.RawMessage `json:"instance"`
}

// SyncStats counts the replica's sync traffic.
type SyncStats struct {
	// AcceptedInstances/AcceptedEntries count imported items;
	// Duplicates the imports already present locally; Rejected the
	// imports that failed verification; Conflicts the impossible case —
	// an already-present key whose stored solution disagrees with the
	// imported one (determinism says zero, the counter is the evidence).
	AcceptedInstances int64
	AcceptedEntries   int64
	Duplicates        int64
	Rejected          int64
	Conflicts         int64
	// BytesIn/BytesOut total the store-codec entry bytes imported and
	// exported — the "sync bytes streamed" series on /metrics.
	BytesIn  int64
	BytesOut int64
}

// SyncDigest snapshots the replica's syncable identity. Registry and
// cache are bounded LRUs, so the digest is bounded too.
func (s *Server) SyncDigest() SyncDigest {
	d := SyncDigest{Hashes: s.registry.Keys(), Keys: s.cache.Keys()}
	if d.Hashes == nil {
		d.Hashes = []string{}
	}
	if d.Keys == nil {
		d.Keys = []string{}
	}
	return d
}

// ExportInstances renders the registered instances named by hashes
// (unknown hashes are skipped — the digest that advertised them may have
// aged out of the LRU since).
func (s *Server) ExportInstances(hashes []string) []SyncInstance {
	var out []SyncInstance
	for _, h := range hashes {
		inst, ok := s.registry.Get(h)
		if !ok {
			continue
		}
		data, err := json.Marshal(inst.App())
		if err != nil {
			continue
		}
		out = append(out, SyncInstance{Hash: h, Instance: data})
	}
	return out
}

// ExportEntries renders the completed cache entries named by keys in the
// store codec (unknown or in-flight keys are skipped). Peek, not Get:
// exporting on a peer's behalf must not distort the local LRU.
func (s *Server) ExportEntries(keys []string) []json.RawMessage {
	var out []json.RawMessage
	for _, k := range keys {
		val, ok := s.cache.Peek(k)
		if !ok {
			continue
		}
		data, err := store.Encode(store.Entry{
			Key:      k,
			Instance: val.inst,
			Solution: val.sol,
			Effort:   val.effort,
		})
		if err != nil {
			continue
		}
		s.syncBytesOut.Add(int64(len(data)))
		out = append(out, data)
	}
	return out
}

// ImportInstance merges one registry entry: the document is
// re-canonicalized and registered under its recomputed hash. A claimed
// hash that disagrees with the recomputed one is rejected — the wire may
// not rename an instance.
func (s *Server) ImportInstance(si SyncInstance) error {
	app := new(workflow.App)
	if err := json.Unmarshal(si.Instance, app); err != nil {
		s.syncRejected.Add(1)
		return fmt.Errorf("service: sync instance: %w", err)
	}
	inst, err := canon.Canonicalize(app)
	if err != nil {
		s.syncRejected.Add(1)
		return fmt.Errorf("service: sync instance: %w", err)
	}
	if si.Hash != "" && si.Hash != inst.Hash() {
		s.syncRejected.Add(1)
		return fmt.Errorf("service: sync instance hash %s recomputes to %s", si.Hash, inst.Hash())
	}
	if _, known := s.registry.Peek(inst.Hash()); known {
		s.syncDuplicates.Add(1)
		return nil
	}
	s.register(inst)
	s.syncAcceptedInstances.Add(1)
	return nil
}

// ImportEntry merges one plan entry (store codec bytes): decoded and
// verified by store.Decode, seeded into the cache as source "sync",
// registered as a drift target, and — when a store is attached —
// persisted write-through so the entry survives this replica's own
// restarts. An already-present key is a duplicate, unless its stored
// value disagrees with the import, which is a conflict (kept local).
func (s *Server) ImportEntry(data []byte) error {
	s.syncBytesIn.Add(int64(len(data)))
	e, err := store.Decode(data)
	if err != nil {
		s.syncRejected.Add(1)
		return fmt.Errorf("service: sync entry: %w", err)
	}
	if existing, ok := s.cache.Peek(e.Key); ok {
		if !existing.sol.Value.Equal(e.Solution.Value) {
			s.syncConflicts.Add(1)
			return fmt.Errorf("service: sync entry %s conflicts with the local solution", e.Key)
		}
		s.syncDuplicates.Add(1)
		return nil
	}
	if !s.cache.Seed(e.Key, cacheEntry{sol: e.Solution, inst: e.Instance, src: "sync", effort: e.Effort}) {
		// Lost a race with an in-flight local solve for the same key —
		// which will complete with the identical solution.
		s.syncDuplicates.Add(1)
		return nil
	}
	s.register(e.Instance)
	if s.cfg.Store != nil {
		if err := s.cfg.Store.Put(e); err != nil {
			s.logger.Warn("sync entry persist failed", "key", e.Key, "err", err)
		}
	}
	s.syncAcceptedEntries.Add(1)
	return nil
}

// SyncStats snapshots the sync counters.
func (s *Server) SyncStats() SyncStats {
	return SyncStats{
		AcceptedInstances: s.syncAcceptedInstances.Load(),
		AcceptedEntries:   s.syncAcceptedEntries.Load(),
		Duplicates:        s.syncDuplicates.Load(),
		Rejected:          s.syncRejected.Load(),
		Conflicts:         s.syncConflicts.Load(),
		BytesIn:           s.syncBytesIn.Load(),
		BytesOut:          s.syncBytesOut.Load(),
	}
}

// syncMaxInstances and syncMaxEntries cap one exchange's payload in each
// direction. The anti-entropy loop converges over successive rounds, so
// a cap only spreads a large transfer across rounds — it never loses
// state — while keeping every request inside the body bound.
const (
	syncMaxInstances = 256
	syncMaxEntries   = 64
)

// SyncRequest is one push-pull exchange from a peer: its digest plus the
// items it pushes.
type SyncRequest struct {
	Digest    SyncDigest        `json:"digest"`
	Instances []SyncInstance    `json:"instances,omitempty"`
	Entries   []json.RawMessage `json:"entries,omitempty"`
}

// SyncResponse answers an exchange: the merge outcome, the items the
// sender's digest lacks (bounded push-back), and the items this replica
// still wants (the sender follows up with a push).
type SyncResponse struct {
	AcceptedInstances int               `json:"accepted_instances"`
	AcceptedEntries   int               `json:"accepted_entries"`
	Rejected          int               `json:"rejected"`
	Instances         []SyncInstance    `json:"instances,omitempty"`
	Entries           []json.RawMessage `json:"entries,omitempty"`
	Want              SyncDigest        `json:"want"`
}

// SyncExchange executes one push-pull merge: imports the pushed items,
// then — against the post-import local digest, so just-pushed items are
// neither re-requested nor echoed back — exports what the sender lacks
// and names what this replica still wants.
func (s *Server) SyncExchange(req SyncRequest) SyncResponse {
	var resp SyncResponse
	for _, si := range req.Instances {
		if err := s.ImportInstance(si); err != nil {
			s.logger.Warn("sync instance rejected", "err", err)
			resp.Rejected++
			continue
		}
		resp.AcceptedInstances++
	}
	for _, e := range req.Entries {
		if err := s.ImportEntry(e); err != nil {
			s.logger.Warn("sync entry rejected", "err", err)
			resp.Rejected++
			continue
		}
		resp.AcceptedEntries++
	}
	local := s.SyncDigest()
	resp.Instances = s.ExportInstances(missing(local.Hashes, req.Digest.Hashes, syncMaxInstances))
	resp.Entries = s.ExportEntries(missing(local.Keys, req.Digest.Keys, syncMaxEntries))
	resp.Want = SyncDigest{
		Hashes: missing(req.Digest.Hashes, local.Hashes, syncMaxInstances),
		Keys:   missing(req.Digest.Keys, local.Keys, syncMaxEntries),
	}
	if resp.Want.Hashes == nil {
		resp.Want.Hashes = []string{}
	}
	if resp.Want.Keys == nil {
		resp.Want.Keys = []string{}
	}
	return resp
}

// missing returns the members of want absent from have, preserving
// want's order, capped at limit (<= 0: uncapped).
func missing(want, have []string, limit int) []string {
	haveSet := make(map[string]struct{}, len(have))
	for _, h := range have {
		haveSet[h] = struct{}{}
	}
	var out []string
	for _, w := range want {
		if _, ok := haveSet[w]; ok {
			continue
		}
		out = append(out, w)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}
