package service

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"repro/internal/canon"
	"repro/internal/gen"
	"repro/internal/plan"
	"repro/internal/plancache"
	"repro/internal/rat"
	"repro/internal/solve"
	"repro/internal/workflow"
)

// fingerprint flattens everything observable about a Solution — value,
// exactness, graph, and the full JSON-encoded operation list — so service
// answers compare bit for bit against direct solver calls.
func fingerprint(t *testing.T, sol solve.Solution) string {
	t.Helper()
	sched, err := json.Marshal(sol.Sched.List)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("value=%s exact=%v graph=%s\n%s", sol.Value, sol.Exact, sol.Graph, sched)
}

// directSolve is the reference answer: solve.MinPeriod/MinLatency on the
// request's canonical instance with the request's exact options.
func directSolve(t *testing.T, req Request) solve.Solution {
	t.Helper()
	inst, err := canon.Canonicalize(req.App)
	if err != nil {
		t.Fatal(err)
	}
	var sol solve.Solution
	if req.Objective == solve.PeriodObjective {
		sol, err = solve.MinPeriod(inst.App(), req.Model, req.solveOptions(nil, 1))
	} else {
		sol, err = solve.MinLatency(inst.App(), req.Model, req.solveOptions(nil, 1))
	}
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

// shuffled returns the same instance with its services listed in a
// different order (precedence remapped), i.e. a distinct representation of
// the same canonical instance.
func shuffled(t *testing.T, app *workflow.App, seed int64) *workflow.App {
	t.Helper()
	rng := gen.NewRand(seed)
	n := app.N()
	perm := rng.Perm(n) // perm[newIndex] = oldIndex
	services := make([]workflow.Service, n)
	old2new := make([]int, n)
	for newIdx, oldIdx := range perm {
		services[newIdx] = app.Service(oldIdx)
		old2new[oldIdx] = newIdx
	}
	var edges [][2]int
	for _, e := range app.Precedence().Edges() {
		edges = append(edges, [2]int{old2new[e[0]], old2new[e[1]]})
	}
	out, err := workflow.New(services, edges)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestPlanMatchesDirectSolve: a served plan (cold or cached) is
// bit-identical to a direct solver call on the canonical instance.
func TestPlanMatchesDirectSolve(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	cases := []Request{
		{App: gen.App(gen.NewRand(1), 4, gen.Mixed), Model: plan.Overlap, Objective: solve.PeriodObjective},
		{App: gen.App(gen.NewRand(2), 4, gen.Filtering), Model: plan.InOrder, Objective: solve.LatencyObjective},
		{App: gen.AppWithPrecedence(gen.NewRand(3), 4, gen.Filtering, 0.3), Model: plan.InOrder, Objective: solve.PeriodObjective},
		{App: gen.App(gen.NewRand(4), 6, gen.Mixed), Model: plan.Overlap, Objective: solve.PeriodObjective, Method: solve.BranchBound},
	}
	for i, req := range cases {
		want := fingerprint(t, directSolve(t, req))
		cold, err := s.Plan(req)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got := fingerprint(t, cold.Solution); got != want {
			t.Errorf("case %d: cold response differs from direct solve:\n%s\nvs\n%s", i, got, want)
		}
		if cold.Outcome != plancache.Miss {
			t.Errorf("case %d: cold outcome = %s", i, cold.Outcome)
		}
		warm, err := s.Plan(req)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if warm.Outcome != plancache.Hit {
			t.Errorf("case %d: warm outcome = %s", i, warm.Outcome)
		}
		if got := fingerprint(t, warm.Solution); got != want {
			t.Errorf("case %d: cached response differs from direct solve", i)
		}
	}
}

// TestConcurrentExactlyOneSolvePerHash is the service's concurrency
// contract (run under -race): many concurrent identical requests —
// including permuted listings of the same instance — collapse to exactly
// one solve per canonical cache key, and every response is bit-identical
// to the direct solver answer.
func TestConcurrentExactlyOneSolvePerHash(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4})

	const distinct = 5
	const callersPerInstance = 8
	reqs := make([]Request, distinct)
	want := make([]string, distinct)
	for i := range reqs {
		reqs[i] = Request{
			App:       gen.App(gen.NewRand(int64(100+i)), 4, gen.Mixed),
			Model:     plan.Overlap,
			Objective: solve.PeriodObjective,
		}
		want[i] = fingerprint(t, directSolve(t, reqs[i]))
	}

	var wg sync.WaitGroup
	errs := make(chan error, distinct*callersPerInstance)
	for i := range reqs {
		for g := 0; g < callersPerInstance; g++ {
			wg.Add(1)
			go func(i, g int) {
				defer wg.Done()
				req := reqs[i]
				if g%2 == 1 {
					// Odd callers send a permuted listing of the same
					// instance: same canonical hash, same cache key.
					req.App = shuffled(t, req.App, int64(g))
				}
				resp, err := s.Plan(req)
				if err != nil {
					errs <- err
					return
				}
				if got := fingerprint(t, resp.Solution); got != want[i] {
					errs <- fmt.Errorf("instance %d caller %d: response differs from direct solve", i, g)
				}
			}(i, g)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := s.Stats()
	if st.Solves != distinct {
		t.Errorf("%d solves for %d distinct canonical instances", st.Solves, distinct)
	}
	if st.Cache.Misses != distinct {
		t.Errorf("cache misses = %d, want %d", st.Cache.Misses, distinct)
	}
	if total := st.Cache.Hits + st.Cache.Coalesced + st.Cache.Misses; total != distinct*callersPerInstance {
		t.Errorf("hits+coalesced+misses = %d, want %d", total, distinct*callersPerInstance)
	}
	if st.Registered != distinct {
		t.Errorf("registered instances = %d, want %d", st.Registered, distinct)
	}
}

// TestPlanBatch: results come back in request order, identical items
// coalesce to one solve, and a bad item fails alone.
func TestPlanBatch(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	appA := gen.App(gen.NewRand(7), 4, gen.Mixed)
	appB := gen.App(gen.NewRand(8), 4, gen.Filtering)
	reqA := Request{App: appA, Model: plan.Overlap, Objective: solve.PeriodObjective}
	reqB := Request{App: appB, Model: plan.Overlap, Objective: solve.PeriodObjective}
	bad := Request{App: nil}

	results := s.PlanBatch([]Request{reqA, reqB, reqA, bad, reqA})
	if len(results) != 5 {
		t.Fatalf("%d results", len(results))
	}
	wantA := fingerprint(t, directSolve(t, reqA))
	wantB := fingerprint(t, directSolve(t, reqB))
	for _, i := range []int{0, 2, 4} {
		if results[i].Err != nil {
			t.Fatalf("item %d: %v", i, results[i].Err)
		}
		if got := fingerprint(t, results[i].Response.Solution); got != wantA {
			t.Errorf("item %d differs from direct solve", i)
		}
	}
	if results[1].Err != nil || fingerprint(t, results[1].Response.Solution) != wantB {
		t.Errorf("item 1 wrong: %v", results[1].Err)
	}
	if results[3].Err == nil {
		t.Error("nil-instance item succeeded")
	}
	if st := s.Stats(); st.Solves != 2 {
		t.Errorf("%d solves for 2 distinct instances", st.Solves)
	}
}

// TestDriftWarmStartMatchesColdSolve is the drift contract: a PATCH-style
// update re-plans warm-started from the cached solution and certifies the
// same objective — in fact the bit-identical Solution — as a cold solve of
// the drifted instance.
func TestDriftWarmStartMatchesColdSolve(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	app := gen.App(gen.NewRand(9), 6, gen.Mixed)
	req := Request{App: app, Model: plan.Overlap, Objective: solve.PeriodObjective, Method: solve.BranchBound}

	first, err := s.Plan(req)
	if err != nil {
		t.Fatal(err)
	}

	// Drift two services' numbers.
	name0, name2 := first.Instance.App().Name(0), first.Instance.App().Name(2)
	newCost := rat.New(9, 2)
	newSel := rat.New(2, 3)
	report, err := s.Drift(first.Hash, []Update{
		{Service: name0, Cost: &newCost},
		{Service: name2, Selectivity: &newSel},
	}, Request{Model: req.Model, Objective: req.Objective, Method: req.Method})
	if err != nil {
		t.Fatal(err)
	}

	if report.OldHash != first.Hash {
		t.Errorf("old hash %s != %s", report.OldHash, first.Hash)
	}
	if report.NewHash == report.OldHash {
		t.Error("drift did not change the hash")
	}
	if !report.OldValue.Equal(first.Solution.Value) {
		t.Errorf("old value %s != %s", report.OldValue, first.Solution.Value)
	}
	if !report.WarmStart {
		t.Error("branch-and-bound drift did not warm-start")
	}
	if report.Incumbent.Less(report.NewValue) {
		t.Errorf("incumbent %s below the certified optimum %s", report.Incumbent, report.NewValue)
	}

	// Reference: cold solve of the drifted instance.
	services := first.Instance.App().Services()
	services[0].Cost = newCost
	services[2].Selectivity = newSel
	driftedApp, err := workflow.New(services, first.Instance.App().Precedence().Edges())
	if err != nil {
		t.Fatal(err)
	}
	coldReq := req
	coldReq.App = driftedApp
	want := fingerprint(t, directSolve(t, coldReq))
	if got := fingerprint(t, report.Response.Solution); got != want {
		t.Errorf("warm-started drift re-plan differs from cold solve:\n%s\nvs\n%s", got, want)
	}
	if !report.Response.Solution.Value.Equal(report.NewValue) {
		t.Error("report.NewValue inconsistent with the response")
	}

	// The drifted instance is registered and its plan cached: a repeat
	// Plan is a pure hit.
	again, err := s.Plan(coldReq)
	if err != nil {
		t.Fatal(err)
	}
	if again.Outcome != plancache.Hit || again.Hash != report.NewHash {
		t.Errorf("re-request of drifted instance: outcome %s hash %s", again.Outcome, again.Hash)
	}
}

// TestDriftIdentityUpdateKeepsHash: an update that sets the same values is
// a hash no-op served from cache.
func TestDriftIdentityUpdateKeepsHash(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	app := gen.App(gen.NewRand(10), 4, gen.Mixed)
	req := Request{App: app, Model: plan.Overlap, Objective: solve.PeriodObjective}
	first, err := s.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	name := first.Instance.App().Name(0)
	sameCost := first.Instance.App().Cost(0)
	report, err := s.Drift(first.Hash, []Update{{Service: name, Cost: &sameCost}}, Request{Model: req.Model})
	if err != nil {
		t.Fatal(err)
	}
	if report.NewHash != report.OldHash {
		t.Error("identity update changed the hash")
	}
	if !report.NewValue.Equal(report.OldValue) {
		t.Error("identity update changed the value")
	}
	if st := s.Stats(); st.Solves != 1 {
		t.Errorf("identity drift re-solved: %d solves", st.Solves)
	}
}

func TestValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, MaxServices: 5})
	app := gen.App(gen.NewRand(11), 4, gen.Mixed)
	cases := []Request{
		{App: nil},
		{App: workflow.MustNew(nil, nil)},
		{App: gen.App(gen.NewRand(12), 6, gen.Mixed)}, // over MaxServices
		{App: app, Model: plan.Model(99)},
		{App: app, Objective: solve.Objective(99)},
		{App: app, Method: solve.Method(99)},
		{App: app, Family: solve.Family(99)},
		{App: app, MaxExactN: -1},
	}
	for i, req := range cases {
		if _, err := s.Plan(req); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := s.Drift("nope", []Update{{Service: "C1"}}, Request{}); err == nil {
		t.Error("drift against unknown hash accepted")
	}
	ok, err := s.Plan(Request{App: app})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Drift(ok.Hash, nil, Request{}); err == nil {
		t.Error("empty drift accepted")
	}
	if _, err := s.Drift(ok.Hash, []Update{{Service: "nope"}}, Request{}); err == nil {
		t.Error("unknown-service drift accepted")
	}
	if _, err := s.Drift(ok.Hash, []Update{{Service: app.Name(0)}}, Request{}); err == nil {
		t.Error("no-op update accepted")
	}
	if st := s.Stats(); st.Rejected != int64(len(cases)+4) {
		t.Errorf("rejected = %d, want %d", st.Rejected, len(cases)+4)
	}
}

// TestConfigClamping: degenerate (negative) configuration values fall back
// to the defaults instead of panicking at startup.
func TestConfigClamping(t *testing.T) {
	s := newTestServer(t, Config{Workers: -1, CacheSize: -1, QueueSize: -1, MaxServices: -1, RegistrySize: -1})
	if _, err := s.Plan(Request{App: gen.App(gen.NewRand(20), 4, gen.Mixed)}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Workers < 1 || st.Cache.Cap != 256 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRegistryBounded: the drift-target registry is an LRU — old instances
// fall out past RegistrySize and drifting against them fails cleanly.
func TestRegistryBounded(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, RegistrySize: 2})
	var hashes []string
	for i := 0; i < 3; i++ {
		resp, err := s.Plan(Request{App: gen.App(gen.NewRand(int64(30+i)), 3, gen.Mixed)})
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, resp.Hash)
	}
	if st := s.Stats(); st.Registered != 2 {
		t.Fatalf("registered = %d, want 2", st.Registered)
	}
	if _, ok := s.Instance(hashes[0]); ok {
		t.Error("oldest instance survived past RegistrySize")
	}
	if _, err := s.Drift(hashes[0], []Update{{Service: "C1"}}, Request{}); err == nil {
		t.Error("drift against an evicted instance succeeded")
	}
	if _, ok := s.Instance(hashes[2]); !ok {
		t.Error("newest instance missing from the registry")
	}
}

func TestCloseRejectsNewWork(t *testing.T) {
	s := New(Config{Workers: 1})
	app := gen.App(gen.NewRand(13), 3, gen.Mixed)
	if _, err := s.Plan(Request{App: app}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	// A cached answer still works after Close (no solve needed)...
	if resp, err := s.Plan(Request{App: app}); err != nil || resp.Outcome != plancache.Hit {
		t.Errorf("cached plan after Close: %v, %v", resp.Outcome, err)
	}
	// ...but fresh work is refused.
	other := gen.App(gen.NewRand(14), 3, gen.Filtering)
	if _, err := s.Plan(Request{App: other}); err == nil {
		t.Error("fresh solve accepted after Close")
	}
}
