package metrics

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("scrape status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestCounterGaugeText(t *testing.T) {
	r := New()
	c := r.Counter("test_requests_total", "Requests.")
	g := r.Gauge("test_depth", "Depth.")
	c.Inc()
	c.Add(4)
	g.Set(2.5)

	out := scrape(t, r)
	for _, want := range []string{
		"# HELP test_requests_total Requests.\n",
		"# TYPE test_requests_total counter\n",
		"test_requests_total 5\n",
		"# TYPE test_depth gauge\n",
		"test_depth 2.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Families render sorted by name: depth before requests_total.
	if strings.Index(out, "test_depth") > strings.Index(out, "test_requests_total") {
		t.Errorf("families not sorted:\n%s", out)
	}
}

func TestVecChildrenSortedAndEscaped(t *testing.T) {
	r := New()
	v := r.CounterVec("test_forwards_total", "Forwards.", "peer", "code")
	v.With("http://b:1", "200").Add(2)
	v.With("http://a:1", "200").Inc()
	v.With(`weird"\`+"\n", "500").Inc()

	out := scrape(t, r)
	a := strings.Index(out, `test_forwards_total{peer="http://a:1",code="200"} 1`)
	b := strings.Index(out, `test_forwards_total{peer="http://b:1",code="200"} 2`)
	e := strings.Index(out, `test_forwards_total{peer="weird\"\\\n",code="500"} 1`)
	if a < 0 || b < 0 || e < 0 {
		t.Fatalf("missing series (a=%d b=%d escaped=%d):\n%s", a, b, e, out)
	}
	if !(a < b) {
		t.Errorf("children not sorted by label values:\n%s", out)
	}
	// Same child handle on repeat With.
	if v.With("http://a:1", "200") != v.With("http://a:1", "200") {
		t.Error("With returned distinct children for one label set")
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := New()
	h := r.Histogram("test_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	out := scrape(t, r)
	for _, want := range []string{
		`test_seconds_bucket{le="0.1"} 1`,
		`test_seconds_bucket{le="1"} 3`,
		`test_seconds_bucket{le="10"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		`test_seconds_sum 56.05`,
		`test_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count() = %d", h.Count())
	}
}

func TestFuncsAndScrapeHooks(t *testing.T) {
	r := New()
	depth := 7.0
	r.GaugeFunc("test_queue_depth", "Depth.", func() float64 { return depth })
	r.CounterFunc("test_sheds_total", "Sheds.", func() float64 { return 3 })
	state := r.GaugeVec("test_breaker_state", "State.", "peer")
	r.OnScrape(func() { state.With("p1").Set(2) })

	out := scrape(t, r)
	for _, want := range []string{
		"test_queue_depth 7\n",
		"test_sheds_total 3\n",
		`test_breaker_state{peer="p1"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	depth = 9
	if out = scrape(t, r); !strings.Contains(out, "test_queue_depth 9\n") {
		t.Errorf("gauge func not re-read at scrape:\n%s", out)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := New()
	r.Counter("test_dup", "One.")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Gauge("test_dup", "Two.")
}

// TestConcurrentInstrumentAndScrape runs instruments against scrapes under
// the race detector.
func TestConcurrentInstrumentAndScrape(t *testing.T) {
	r := New()
	c := r.Counter("test_total", "Total.")
	h := r.Histogram("test_lat", "Latency.", nil)
	v := r.CounterVec("test_vec", "Vec.", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.Inc()
				h.Observe(float64(j) / 100)
				v.With([]string{"a", "b", "c"}[j%3]).Inc()
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			_ = scrape(t, r)
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != 8*500 {
		t.Errorf("counter %d after concurrent increments", c.Value())
	}
	out := scrape(t, r)
	if !strings.Contains(out, "test_lat_count 4000") {
		t.Errorf("histogram lost observations:\n%s", out)
	}
}
