// Package metrics is the dependency-free observability registry of the
// planning service: counters, gauges and histograms rendered in the
// Prometheus text exposition format (version 0.0.4) at GET /metrics.
//
// filterd and the cluster router are the intended users (DESIGN.md §4):
// the ad-hoc JSON counters of /v1/stats stay for compatibility, but the
// operational surface — request latency per route, solver wall time,
// cache and memo hit rates, queue depth, breaker state, per-peer
// forward/failover counts — lives here, scrapeable by any Prometheus-
// compatible collector without adding a dependency to the module.
//
// Concurrency: instrument methods (Add, Inc, Set, Observe) are lock-free
// atomics, safe on request hot paths; registration and scraping take the
// registry lock. Output is deterministic: families sort by name, children
// by label values, so scrapes diff cleanly in tests and smoke scripts.
package metrics

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default histogram buckets, in seconds — the
// Prometheus convention, spanning sub-millisecond cache hits to
// multi-second exact solves.
var DefBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// kind is the metric family type reported on the # TYPE line.
type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing integer value.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the value to stay monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Set pins the value — for scrape hooks mirroring a counter tracked
// elsewhere (an atomic on a hot path, a breaker's transition count). The
// mirrored source must itself be monotone.
func (c *Counter) Set(n int64) { c.v.Store(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into cumulative buckets and tracks their
// sum — request latencies, solver wall times.
type Histogram struct {
	upper   []float64      // ascending bucket upper bounds, +Inf implicit
	counts  []atomic.Int64 // one per upper bound
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, ub := range h.upper {
		if v <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// child is one labeled series of a family.
type child struct {
	values []string // label values, aligned with family.labels
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // callback series (CounterFunc/GaugeFunc)
}

// family is one named metric with all its labeled children.
type family struct {
	name, help string
	kind       kind
	labels     []string
	buckets    []float64 // histogram families only

	mu       sync.Mutex
	children map[string]*child
}

func (f *family) child(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	ch, ok := f.children[key]
	if !ok {
		ch = &child{values: append([]string(nil), values...)}
		switch f.kind {
		case counterKind:
			ch.c = new(Counter)
		case gaugeKind:
			ch.g = new(Gauge)
		case histogramKind:
			ch.h = &Histogram{upper: f.buckets, counts: make([]atomic.Int64, len(f.buckets))}
		}
		f.children[key] = ch
	}
	return ch
}

// CounterVec is a counter family with labels; With resolves one series.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (created on first
// use). The arity must match the registered label names.
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).c }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).g }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values).h }

// Registry holds metric families and renders them. Create with New.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*family
	hooks  []func()
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register creates a family, panicking on a duplicate name: two owners
// publishing under one name would interleave series unpredictably, and
// every call site registers once at construction, so a collision is a
// wiring bug worth failing loudly on.
func (r *Registry) register(name, help string, k kind, labels []string, buckets []float64) *family {
	if name == "" {
		panic("metrics: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; ok {
		panic(fmt.Sprintf("metrics: %s already registered", name))
	}
	f := &family{
		name: name, help: help, kind: k,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]*child),
	}
	r.byName[name] = f
	return f
}

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, counterKind, nil, nil).child(nil).c
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, counterKind, labels, nil)}
}

// CounterFunc registers a counter whose value is read by fn at scrape
// time — for monotone counts already tracked on a hot path elsewhere.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, counterKind, nil, nil).child(nil).fn = fn
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, gaugeKind, nil, nil).child(nil).g
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, gaugeKind, labels, nil)}
}

// GaugeFunc registers a gauge whose value is read by fn at scrape time —
// queue depths, pool sizes, cache lengths.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, gaugeKind, nil, nil).child(nil).fn = fn
}

// Histogram registers an unlabeled histogram with the given ascending
// bucket upper bounds (nil: DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.register(name, help, histogramKind, nil, buckets).child(nil).h
}

// HistogramVec registers a labeled histogram family (nil: DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{r.register(name, help, histogramKind, labels, buckets)}
}

// OnScrape registers a hook run at the start of every scrape, before
// rendering — the place to refresh Set-mirrored values (per-peer breaker
// states, transition counts) that have no callback slot of their own.
func (r *Registry) OnScrape(hook func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hooks = append(r.hooks, hook)
}

// escapeLabel escapes a label value per the text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// formatFloat renders a sample value (integers without exponent noise).
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {a="x",b="y"} for the series, with extra appended
// last (the histogram le label); empty for an unlabeled series.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(values[i]))
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraName, extraValue)
	}
	b.WriteByte('}')
	return b.String()
}

// WriteTo renders every family in the text exposition format.
func (r *Registry) WriteTo(w *strings.Builder) {
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	fams := make([]*family, 0, len(r.byName))
	for _, f := range r.byName {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	for _, hook := range hooks {
		hook()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		f.mu.Lock()
		children := make([]*child, 0, len(f.children))
		for _, ch := range f.children {
			children = append(children, ch)
		}
		f.mu.Unlock()
		sort.Slice(children, func(i, j int) bool {
			return strings.Join(children[i].values, "\x00") < strings.Join(children[j].values, "\x00")
		})

		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		for _, ch := range children {
			switch {
			case ch.fn != nil:
				fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, ch.values, "", ""), formatFloat(ch.fn()))
			case f.kind == counterKind:
				fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, ch.values, "", ""), ch.c.Value())
			case f.kind == gaugeKind:
				fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, ch.values, "", ""), formatFloat(ch.g.Value()))
			default:
				h := ch.h
				cum := int64(0)
				for i, ub := range h.upper {
					cum += h.counts[i].Load()
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
						labelString(f.labels, ch.values, "le", formatFloat(ub)), cum)
				}
				count := h.count.Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, ch.values, "le", "+Inf"), count)
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labels, ch.values, "", ""),
					formatFloat(math.Float64frombits(h.sumBits.Load())))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, ch.values, "", ""), count)
			}
		}
	}
}

// Handler serves the registry in the Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var b strings.Builder
		r.WriteTo(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, b.String())
	})
}
