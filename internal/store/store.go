// Package store is the persistence layer of the planning service: a
// write-through, disk-backed plan store keyed by the plan cache's full key
// (canonical instance hash plus solve parameters, internal/service).
//
// The paper's plans are computed once and reused across millions of data
// sets, so losing a populated cache to a restart re-pays the NP-hard
// search for every live instance. The store closes that gap: every
// successful solve is persisted write-through as one self-contained file,
// and a restarted replica warm-loads the directory back into its LRU, so
// it answers warm-hit requests bit-identical to pre-restart — the
// determinism invariant extended across process lifetimes.
//
// # On-disk codec
//
// One entry per file, named by the SHA-256 of the cache key. The codec is
// versioned (entryVersion): an entry records the canonical application
// (the workflow JSON instance format), the execution-graph edges over
// canonical indices, the operation list (the oplist JSON codec) and the
// objective metadata. Loading re-canonicalizes the stored application and
// rejects any entry whose recomputed hash disagrees with its key — a
// corrupt or stale-format file is skipped, never served.
//
// # Crash safety
//
// Writes go to a temporary file in the same directory, are fsynced, and
// renamed over the final name — a crash mid-write leaves either the old
// entry or a .tmp file the next load ignores, never a torn entry.
//
// # Quarantine
//
// A file that does decode-fail at load — torn by a crash that beat the
// rename discipline, truncated by a failing disk, hash-mismatched by bit
// rot — is quarantined: renamed aside with a ".bad" suffix and counted,
// so the rest of the directory warm-loads and the next startup does not
// trip over the same corpse. Quarantine never aborts a load; losing one
// entry costs one re-solve, losing the startup costs every entry.
//
// # Replication
//
// Encode and Decode expose the entry codec to the cluster's sync layer:
// POST /v1/sync streams entries between shard co-owners in exactly the
// bytes this package persists, so a plan solved (or PATCHed) on one
// replica warm-loads on its peers without a second serialization format.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/canon"
	"repro/internal/cliopt"
	"repro/internal/oplist"
	"repro/internal/orchestrate"
	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/solve"
	"repro/internal/workflow"
)

// entryVersion tags the on-disk format; loaders skip files with any other
// version, so a future format change cannot alias old entries.
const entryVersion = "filterd-plan-store/v1"

// suffix is the entry file extension; everything else in the directory is
// ignored on load.
const suffix = ".plan.json"

// Entry is one persisted plan: the full cache key, the canonical instance
// it was solved on, and the solution.
type Entry struct {
	// Key is the plan cache key: canonical hash plus every solve
	// parameter that can change the solution.
	Key string
	// Instance is the canonical instance (its Hash is the key's prefix).
	Instance *canon.Instance
	// Solution is the solved plan, reconstructed bit-identical on load.
	Solution solve.Solution
	// Effort, when non-nil, is the search-effort record of the solve that
	// produced the Solution (solver counters, memo hits, timings) — kept
	// so a warm-restarted service explains a stored plan with the original
	// solve's evidence. Optional: entries written before the field existed
	// load with a nil Effort, and a malformed effort block drops only the
	// effort, never the plan.
	Effort *solve.Effort
}

// Stats are the running counters of a store.
type Stats struct {
	// Writes counts persisted entries this process wrote; WriteErrors the
	// failed persists (the serving path continues — persistence is an
	// availability optimization, not a correctness gate).
	Writes      int64
	WriteErrors int64
	// Loaded counts entries warm-loaded by the last Load call; Skipped
	// the files Load rejected (wrong version, hash mismatch, decode
	// error). Quarantined counts the rejected files Load renamed aside
	// with a ".bad" suffix (every Skipped file except other-version
	// entries, which are preserved in place for the codec that wrote
	// them).
	Loaded      int64
	Skipped     int64
	Quarantined int64
}

// Hooks intercepts entry I/O — the store-side fault-injection seam
// (internal/faults implements it). Nil hooks inject nothing.
type Hooks interface {
	// BeforeWrite sees every entry payload before it reaches the disk;
	// it may rewrite (tear) the data or fail the write.
	BeforeWrite(name string, data []byte) ([]byte, error)
}

// Store is a directory of persisted plans. Create with Open; methods are
// safe for concurrent use.
type Store struct {
	dir string

	mu    sync.Mutex
	stats Stats
	hooks Hooks
}

// Open creates the directory if needed and returns the store.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// SetHooks installs (or clears, with nil) the I/O fault hooks. Call
// before the store is shared; the field is read unsynchronized on the
// write path.
func (s *Store) SetHooks(h Hooks) { s.hooks = h }

// entryJSON is the versioned serialization of one Entry.
type entryJSON struct {
	Version string `json:"version"`
	Key     string `json:"key"`
	Hash    string `json:"hash"`
	// Instance is the canonical application in the workflow JSON instance
	// format (exact rationals, precedence as the transitive reduction).
	Instance json.RawMessage `json:"instance"`
	// Edges are the execution-graph edges over canonical service indices,
	// in the deterministic dag.Graph.Edges order.
	Edges [][2]int `json:"edges"`
	Value rat.Rat  `json:"value"`
	Exact bool     `json:"exact"`
	// The orchestration result: its value/bound/exactness/bottleneck plus
	// the operation list in the oplist JSON codec.
	SchedValue      rat.Rat         `json:"sched_value"`
	SchedLowerBound rat.Rat         `json:"sched_lower_bound"`
	SchedExact      bool            `json:"sched_exact"`
	SchedBottleneck []string        `json:"sched_bottleneck,omitempty"`
	Schedule        json.RawMessage `json:"schedule"`
	// Effort is the optional search-effort record (absent in entries
	// written before it existed — the version tag is unchanged because old
	// entries remain fully servable).
	Effort *effortJSON `json:"effort,omitempty"`
}

// effortJSON serializes solve.Effort with the method and family as their
// canonical names, so entry files stay greppable and enum renumbering
// cannot corrupt stored records.
type effortJSON struct {
	Method   string `json:"method"`
	Family   string `json:"family"`
	Expanded int64  `json:"expanded"`
	Pruned   int64  `json:"pruned"`
	// Evaluated counts complete graphs scored by the branch-and-bound
	// search; Evals every candidate orchestration of the solve.
	Evaluated       int64 `json:"evaluated"`
	Evals           int64 `json:"orchestrations"`
	MemoHits        int64 `json:"memo_hits"`
	OrchPrefixes    int64 `json:"orch_prefixes"`
	OrchPruned      int64 `json:"orch_pruned"`
	OrchEvaluated   int64 `json:"orch_evaluated"`
	BoundEdgesBuilt int64 `json:"bound_edges_built"`
	BoundEdgesFlat  int64 `json:"bound_edges_flat"`
	FilterCertified int64 `json:"filter_certified"`
	FilterFallback  int64 `json:"filter_fallback"`
	QueueNanos      int64 `json:"queue_nanos"`
	SolveNanos      int64 `json:"solve_nanos"`
	OrchNanos       int64 `json:"orch_nanos"`
}

// encodeEffort maps solve.Effort to its JSON form (nil passes through).
func encodeEffort(e *solve.Effort) *effortJSON {
	if e == nil {
		return nil
	}
	return &effortJSON{
		Method:          e.Method.String(),
		Family:          e.Family.String(),
		Expanded:        e.Search.Expanded,
		Pruned:          e.Search.Pruned,
		Evaluated:       e.Search.Evaluated,
		Evals:           e.Evals,
		MemoHits:        e.MemoHits,
		OrchPrefixes:    e.Orch.Prefixes,
		OrchPruned:      e.Orch.Pruned,
		OrchEvaluated:   e.Orch.Evaluated,
		BoundEdgesBuilt: e.Orch.BoundEdgesBuilt,
		BoundEdgesFlat:  e.Orch.BoundEdgesFlat,
		FilterCertified: e.Orch.FilterCertified,
		FilterFallback:  e.Orch.FilterFallback,
		QueueNanos:      e.QueueNanos,
		SolveNanos:      e.SolveNanos,
		OrchNanos:       e.OrchNanos,
	}
}

// decodeEffort maps the JSON form back; an unparseable method or family
// name (a future format) yields nil — the effort degrades, the plan
// stays servable.
func decodeEffort(d *effortJSON) *solve.Effort {
	if d == nil {
		return nil
	}
	method, err := cliopt.Method(d.Method)
	if err != nil {
		return nil
	}
	family, err := cliopt.Family(d.Family)
	if err != nil {
		return nil
	}
	return &solve.Effort{
		Method: method,
		Family: family,
		Search: solve.Stats{Expanded: d.Expanded, Pruned: d.Pruned, Evaluated: d.Evaluated},
		Orch: orchestrate.Stats{
			Prefixes:        d.OrchPrefixes,
			Pruned:          d.OrchPruned,
			Evaluated:       d.OrchEvaluated,
			BoundEdgesBuilt: d.BoundEdgesBuilt,
			BoundEdgesFlat:  d.BoundEdgesFlat,
			FilterCertified: d.FilterCertified,
			FilterFallback:  d.FilterFallback,
		},
		Evals:      d.Evals,
		MemoHits:   d.MemoHits,
		QueueNanos: d.QueueNanos,
		SolveNanos: d.SolveNanos,
		OrchNanos:  d.OrchNanos,
	}
}

// fileName maps a cache key to its entry file: the hex SHA-256 of the key,
// so arbitrary key vocabularies stay filename-safe and collision-free.
func fileName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + suffix
}

// Put persists one solved plan write-through (atomic replace of any
// previous entry for the key).
func (s *Store) Put(e Entry) error {
	err := s.put(e)
	s.mu.Lock()
	if err != nil {
		s.stats.WriteErrors++
	} else {
		s.stats.Writes++
	}
	s.mu.Unlock()
	return err
}

func (s *Store) put(e Entry) error {
	data, err := Encode(e)
	if err != nil {
		return err
	}
	name := fileName(e.Key)
	if s.hooks != nil {
		// The fault seam: the hook may tear the payload (a torn write
		// lands on disk and is quarantined by the next Load) or fail the
		// write outright.
		if data, err = s.hooks.BeforeWrite(name, data); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	return s.writeAtomic(name, data)
}

// Encode serializes one entry in the on-disk (and on-wire /v1/sync)
// codec.
func Encode(e Entry) ([]byte, error) {
	if e.Instance == nil || e.Solution.Graph == nil || e.Solution.Sched.List == nil {
		return nil, fmt.Errorf("store: incomplete entry for key %q", e.Key)
	}
	instData, err := json.Marshal(e.Instance.App())
	if err != nil {
		return nil, fmt.Errorf("store: encoding instance: %w", err)
	}
	schedData, err := json.Marshal(e.Solution.Sched.List)
	if err != nil {
		return nil, fmt.Errorf("store: encoding schedule: %w", err)
	}
	doc := entryJSON{
		Version:         entryVersion,
		Key:             e.Key,
		Hash:            e.Instance.Hash(),
		Instance:        instData,
		Edges:           e.Solution.Graph.Graph().Edges(),
		Value:           e.Solution.Value,
		Exact:           e.Solution.Exact,
		SchedValue:      e.Solution.Sched.Value,
		SchedLowerBound: e.Solution.Sched.LowerBound,
		SchedExact:      e.Solution.Sched.Exact,
		SchedBottleneck: e.Solution.Sched.Bottleneck,
		Schedule:        schedData,
		Effort:          encodeEffort(e.Effort),
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return append(data, '\n'), nil
}

// writeAtomic writes data to name via a same-directory temp file, fsync
// and rename, so a crash never leaves a torn entry under the final name.
func (s *Store) writeAtomic(name string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, name)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Load decodes every entry in the directory in sorted file order (a
// deterministic warm-load order) and hands it to fn. Files that fail to
// decode or whose recomputed canonical hash disagrees with the stored key
// are counted as skipped, quarantined (renamed aside with a ".bad"
// suffix, so the next startup does not re-trip over them) and never
// served; the one exception is an entry carrying another codec version,
// which is skipped in place — it belongs to the codec that wrote it.
// A bad entry never aborts the load: the rest of the directory serves.
func (s *Store) Load(fn func(Entry)) error {
	names, err := s.entryNames()
	if err != nil {
		return err
	}
	var loaded, skipped, quarantined int64
	for _, name := range names {
		path := filepath.Join(s.dir, name)
		e, err := s.loadFile(path)
		if err != nil {
			skipped++
			if !errors.Is(err, errOtherVersion) {
				// Best-effort: a rename failure leaves the file for the
				// next load to skip again; the entry stays unserved
				// either way.
				if os.Rename(path, path+".bad") == nil {
					quarantined++
				}
			}
			continue
		}
		loaded++
		fn(e)
	}
	s.mu.Lock()
	s.stats.Loaded = loaded
	s.stats.Skipped = skipped
	s.stats.Quarantined = quarantined
	s.mu.Unlock()
	return nil
}

func (s *Store) entryNames() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var names []string
	for _, de := range entries {
		if de.IsDir() || !strings.HasSuffix(de.Name(), suffix) {
			continue
		}
		names = append(names, de.Name())
	}
	sort.Strings(names)
	return names, nil
}

// errOtherVersion marks an entry written by a different codec version —
// skipped, but never quarantined (it is not corrupt, just not ours).
var errOtherVersion = errors.New("store: other codec version")

// loadFile reconstructs one entry bit-identical to what Put serialized.
func (s *Store) loadFile(path string) (Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Entry{}, err
	}
	e, err := Decode(data)
	if err != nil {
		return Entry{}, fmt.Errorf("%s: %w", path, err)
	}
	return e, nil
}

// Decode reconstructs one entry from its Encode bytes: the application is
// re-canonicalized (verifying the content hash), the execution graph
// rebuilt from its edge list, and the operation list restored through the
// oplist codec. An entry whose recomputed hash disagrees with its stored
// key is rejected — corrupt or forged bytes are never served, on the
// warm-load path and the /v1/sync import path alike.
func Decode(data []byte) (Entry, error) {
	var doc entryJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return Entry{}, fmt.Errorf("store: %w", err)
	}
	if doc.Version != entryVersion {
		return Entry{}, fmt.Errorf("%w: %q, want %q", errOtherVersion, doc.Version, entryVersion)
	}
	app := new(workflow.App)
	if err := app.UnmarshalJSON(doc.Instance); err != nil {
		return Entry{}, fmt.Errorf("store: instance: %w", err)
	}
	inst, err := canon.Canonicalize(app)
	if err != nil {
		return Entry{}, fmt.Errorf("store: %w", err)
	}
	if inst.Hash() != doc.Hash || !strings.HasPrefix(doc.Key, doc.Hash) {
		return Entry{}, fmt.Errorf("store: canonical hash mismatch")
	}
	eg, err := plan.Build(inst.App(), doc.Edges)
	if err != nil {
		return Entry{}, fmt.Errorf("store: graph: %w", err)
	}
	list, err := oplist.LoadList(eg.Weighted(), doc.Schedule)
	if err != nil {
		return Entry{}, fmt.Errorf("store: schedule: %w", err)
	}
	return Entry{
		Key:      doc.Key,
		Instance: inst,
		Solution: solve.Solution{
			Graph: eg,
			Sched: orchestrate.Result{
				List:       list,
				Value:      doc.SchedValue,
				LowerBound: doc.SchedLowerBound,
				Exact:      doc.SchedExact,
				Bottleneck: doc.SchedBottleneck,
			},
			Value: doc.Value,
			Exact: doc.Exact,
		},
		Effort: decodeEffort(doc.Effort),
	}, nil
}

// Len counts the entries currently on disk.
func (s *Store) Len() (int, error) {
	names, err := s.entryNames()
	if err != nil {
		return 0, err
	}
	return len(names), nil
}

// Flush forces directory metadata to disk (entry data is already fsynced
// per write) — the graceful-shutdown hook of cmd/filterd.
func (s *Store) Flush() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
