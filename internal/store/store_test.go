package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/canon"
	"repro/internal/plan"
	"repro/internal/solve"
	"repro/internal/workflow"
)

func solvedEntry(t *testing.T, name string) Entry {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	app := new(workflow.App)
	if err := app.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	inst, err := canon.Canonicalize(app)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := solve.MinPeriod(inst.App(), plan.InOrder, solve.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return Entry{Key: inst.Hash() + "|inorder|period", Instance: inst, Solution: sol}
}

// TestPutLoadRoundTripsBitIdentical: an entry written and loaded back
// reproduces the key, hash, objective metadata, graph edges and the exact
// oplist serialization of the original solution.
func TestPutLoadRoundTripsBitIdentical(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := solvedEntry(t, "webquery8.json")
	if err := s.Put(want); err != nil {
		t.Fatal(err)
	}

	var got []Entry
	if err := s.Load(func(e Entry) { got = append(got, e) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("loaded %d entries, want 1", len(got))
	}
	e := got[0]
	if e.Key != want.Key || e.Instance.Hash() != want.Instance.Hash() {
		t.Errorf("key/hash: got %q/%s", e.Key, e.Instance.Hash())
	}
	if !e.Solution.Value.Equal(want.Solution.Value) || e.Solution.Exact != want.Solution.Exact {
		t.Errorf("objective: got %s/%v, want %s/%v",
			e.Solution.Value, e.Solution.Exact, want.Solution.Value, want.Solution.Exact)
	}
	if !reflect.DeepEqual(e.Solution.Graph.Graph().Edges(), want.Solution.Graph.Graph().Edges()) {
		t.Error("graph edges differ after the round trip")
	}
	if !e.Solution.Sched.Value.Equal(want.Solution.Sched.Value) ||
		!e.Solution.Sched.LowerBound.Equal(want.Solution.Sched.LowerBound) ||
		e.Solution.Sched.Exact != want.Solution.Sched.Exact ||
		!reflect.DeepEqual(e.Solution.Sched.Bottleneck, want.Solution.Sched.Bottleneck) {
		t.Error("orchestration metadata differs after the round trip")
	}
	wantSched, err := json.Marshal(want.Solution.Sched.List)
	if err != nil {
		t.Fatal(err)
	}
	gotSched, err := json.Marshal(e.Solution.Sched.List)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotSched) != string(wantSched) {
		t.Error("schedule serialization differs after the round trip")
	}
	if st := s.Stats(); st.Writes != 1 || st.Loaded != 1 || st.Skipped != 0 {
		t.Errorf("stats %+v", st)
	}
}

// TestPutReplacesSameKey: write-through updates replace, never duplicate.
func TestPutReplacesSameKey(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := solvedEntry(t, "mixed6.json")
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1", n, err)
	}
}

// TestLoadSkipsForeignAndCorruptFiles: wrong-version entries, torn JSON,
// temp files and hash-mismatched entries are counted skipped, not served.
func TestLoadSkipsForeignAndCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := solvedEntry(t, "mixed6.json")
	if err := s.Put(good); err != nil {
		t.Fatal(err)
	}

	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("torn"+suffix, `{"version": "filterd-plan-store/v1", "key": "tru`)
	write("wrongver"+suffix, `{"version": "filterd-plan-store/v999", "key": "x"}`)
	write(".tmp-123", `garbage from a crashed write`)
	write("README.txt", `not an entry`)

	// A forged entry whose instance does not hash to its recorded hash.
	forged, err := os.ReadFile(filepath.Join(dir, fileName(good.Key)))
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(forged, &doc); err != nil {
		t.Fatal(err)
	}
	doc["hash"] = "0000000000000000000000000000000000000000000000000000000000000000"
	forgedData, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	write("forged"+suffix, string(forgedData))

	var keys []string
	if err := s.Load(func(e Entry) { keys = append(keys, e.Key) }); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != good.Key {
		t.Fatalf("loaded keys %v, want only the good entry", keys)
	}
	if st := s.Stats(); st.Loaded != 1 || st.Skipped != 3 {
		t.Errorf("stats %+v, want 1 loaded / 3 skipped", st)
	}
}

// TestLoadQuarantinesCorruptEntry: a corrupted entry is renamed aside
// with a ".bad" suffix, counted, and gone from the next load's way —
// while every healthy entry still serves. Wrong-version entries are
// skipped but left in place (they belong to another codec).
func TestLoadQuarantinesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := solvedEntry(t, "webquery8.json")
	victim := solvedEntry(t, "mixed6.json")
	if err := s.Put(good); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(victim); err != nil {
		t.Fatal(err)
	}

	// Corrupt the victim in place: truncate it mid-document, the shape a
	// torn write or failing disk leaves behind.
	victimPath := filepath.Join(dir, fileName(victim.Key))
	data, err := os.ReadFile(victimPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victimPath, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	// And one wrong-version file, which must NOT be quarantined.
	foreignPath := filepath.Join(dir, "foreign"+suffix)
	if err := os.WriteFile(foreignPath,
		[]byte(`{"version": "filterd-plan-store/v999"}`), 0o644); err != nil {
		t.Fatal(err)
	}

	var keys []string
	if err := s.Load(func(e Entry) { keys = append(keys, e.Key) }); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != good.Key {
		t.Fatalf("loaded keys %v, want only the good entry", keys)
	}
	if st := s.Stats(); st.Loaded != 1 || st.Skipped != 2 || st.Quarantined != 1 {
		t.Errorf("stats %+v, want 1 loaded / 2 skipped / 1 quarantined", st)
	}
	if _, err := os.Stat(victimPath); !os.IsNotExist(err) {
		t.Errorf("corrupt entry still at %s (%v)", victimPath, err)
	}
	if _, err := os.Stat(victimPath + ".bad"); err != nil {
		t.Errorf("quarantined file missing: %v", err)
	}
	if _, err := os.Stat(foreignPath); err != nil {
		t.Errorf("wrong-version file was moved: %v", err)
	}

	// The next load no longer trips over the corpse: the .bad file is
	// not an entry, so nothing is skipped or re-quarantined.
	if err := s.Load(func(Entry) {}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Loaded != 1 || st.Skipped != 1 || st.Quarantined != 0 {
		t.Errorf("second load stats %+v, want 1 loaded / 1 skipped (foreign) / 0 quarantined", st)
	}
}

// TestWriteHooksInjectFailures: an installed hook can fail a write (the
// error surfaces, WriteErrors counts) or tear the payload (the torn
// entry lands on disk and the next load quarantines it).
func TestWriteHooksInjectFailures(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := solvedEntry(t, "mixed6.json")

	s.SetHooks(hookFunc(func(name string, data []byte) ([]byte, error) {
		return nil, os.ErrPermission
	}))
	if err := s.Put(e); err == nil {
		t.Fatal("hooked write failure did not surface")
	}
	if st := s.Stats(); st.WriteErrors != 1 {
		t.Errorf("WriteErrors %d, want 1", st.WriteErrors)
	}

	s.SetHooks(hookFunc(func(name string, data []byte) ([]byte, error) {
		return data[:len(data)/2], nil
	}))
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	s.SetHooks(nil)
	if err := s.Load(func(Entry) {}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Loaded != 0 || st.Quarantined != 1 {
		t.Errorf("stats after torn write %+v, want 0 loaded / 1 quarantined", st)
	}
}

// hookFunc adapts a function to the Hooks interface.
type hookFunc func(name string, data []byte) ([]byte, error)

func (f hookFunc) BeforeWrite(name string, data []byte) ([]byte, error) { return f(name, data) }

// TestFlushAndOpenValidation: Flush succeeds on a live store; Open rejects
// an empty directory path.
func TestFlushAndOpenValidation(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("Open(\"\") succeeded")
	}
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
}
