package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/canon"
	"repro/internal/plan"
	"repro/internal/solve"
	"repro/internal/workflow"
)

func solvedEntry(t *testing.T, name string) Entry {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	app := new(workflow.App)
	if err := app.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	inst, err := canon.Canonicalize(app)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := solve.MinPeriod(inst.App(), plan.InOrder, solve.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return Entry{Key: inst.Hash() + "|inorder|period", Instance: inst, Solution: sol}
}

// TestPutLoadRoundTripsBitIdentical: an entry written and loaded back
// reproduces the key, hash, objective metadata, graph edges and the exact
// oplist serialization of the original solution.
func TestPutLoadRoundTripsBitIdentical(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := solvedEntry(t, "webquery8.json")
	if err := s.Put(want); err != nil {
		t.Fatal(err)
	}

	var got []Entry
	if err := s.Load(func(e Entry) { got = append(got, e) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("loaded %d entries, want 1", len(got))
	}
	e := got[0]
	if e.Key != want.Key || e.Instance.Hash() != want.Instance.Hash() {
		t.Errorf("key/hash: got %q/%s", e.Key, e.Instance.Hash())
	}
	if !e.Solution.Value.Equal(want.Solution.Value) || e.Solution.Exact != want.Solution.Exact {
		t.Errorf("objective: got %s/%v, want %s/%v",
			e.Solution.Value, e.Solution.Exact, want.Solution.Value, want.Solution.Exact)
	}
	if !reflect.DeepEqual(e.Solution.Graph.Graph().Edges(), want.Solution.Graph.Graph().Edges()) {
		t.Error("graph edges differ after the round trip")
	}
	if !e.Solution.Sched.Value.Equal(want.Solution.Sched.Value) ||
		!e.Solution.Sched.LowerBound.Equal(want.Solution.Sched.LowerBound) ||
		e.Solution.Sched.Exact != want.Solution.Sched.Exact ||
		!reflect.DeepEqual(e.Solution.Sched.Bottleneck, want.Solution.Sched.Bottleneck) {
		t.Error("orchestration metadata differs after the round trip")
	}
	wantSched, err := json.Marshal(want.Solution.Sched.List)
	if err != nil {
		t.Fatal(err)
	}
	gotSched, err := json.Marshal(e.Solution.Sched.List)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotSched) != string(wantSched) {
		t.Error("schedule serialization differs after the round trip")
	}
	if st := s.Stats(); st.Writes != 1 || st.Loaded != 1 || st.Skipped != 0 {
		t.Errorf("stats %+v", st)
	}
}

// TestPutReplacesSameKey: write-through updates replace, never duplicate.
func TestPutReplacesSameKey(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := solvedEntry(t, "mixed6.json")
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1", n, err)
	}
}

// TestLoadSkipsForeignAndCorruptFiles: wrong-version entries, torn JSON,
// temp files and hash-mismatched entries are counted skipped, not served.
func TestLoadSkipsForeignAndCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := solvedEntry(t, "mixed6.json")
	if err := s.Put(good); err != nil {
		t.Fatal(err)
	}

	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("torn"+suffix, `{"version": "filterd-plan-store/v1", "key": "tru`)
	write("wrongver"+suffix, `{"version": "filterd-plan-store/v999", "key": "x"}`)
	write(".tmp-123", `garbage from a crashed write`)
	write("README.txt", `not an entry`)

	// A forged entry whose instance does not hash to its recorded hash.
	forged, err := os.ReadFile(filepath.Join(dir, fileName(good.Key)))
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(forged, &doc); err != nil {
		t.Fatal(err)
	}
	doc["hash"] = "0000000000000000000000000000000000000000000000000000000000000000"
	forgedData, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	write("forged"+suffix, string(forgedData))

	var keys []string
	if err := s.Load(func(e Entry) { keys = append(keys, e.Key) }); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != good.Key {
		t.Fatalf("loaded keys %v, want only the good entry", keys)
	}
	if st := s.Stats(); st.Loaded != 1 || st.Skipped != 3 {
		t.Errorf("stats %+v, want 1 loaded / 3 skipped", st)
	}
}

// TestFlushAndOpenValidation: Flush succeeds on a live store; Open rejects
// an empty directory path.
func TestFlushAndOpenValidation(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("Open(\"\") succeeded")
	}
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
}
