// Package reduction makes the paper's NP-hardness proofs executable: it
// builds the RN3DM and 2-Partition gadget instances of Propositions 2, 5,
// 9, 13 and 17, together with the witness plans/orders their YES directions
// prescribe, so the reductions can be machine-checked against the solvers
// and orchestrators on small instances.
package reduction

import (
	"fmt"
	"math/rand"
)

// RN3DM is an instance of the permutation-sums problem (a restricted
// 3-dimensional matching, Yu/Hoogeveen/Lenstra): given an integer vector A,
// do two permutations λ1, λ2 of {1..n} exist with λ1(i)+λ2(i) = A[i]?
type RN3DM struct {
	A []int
}

// N returns the instance size.
func (r RN3DM) N() int { return len(r.A) }

// Valid reports whether the instance passes the necessary conditions
// 2 ≤ A[i] ≤ 2n and ΣA[i] = n(n+1); instances failing them are trivially NO.
func (r RN3DM) Valid() bool {
	n := len(r.A)
	sum := 0
	for _, a := range r.A {
		if a < 2 || a > 2*n {
			return false
		}
		sum += a
	}
	return sum == n*(n+1)
}

// Solve searches for the two permutations by backtracking (exponential;
// intended for the small instances the gadget checks use). It returns
// 1-based permutations λ1, λ2 with λ1[i]+λ2[i] == A[i], or ok == false.
func (r RN3DM) Solve() (lam1, lam2 []int, ok bool) {
	n := len(r.A)
	if !r.Valid() {
		return nil, nil, false
	}
	lam1 = make([]int, n)
	lam2 = make([]int, n)
	used1 := make([]bool, n+1)
	used2 := make([]bool, n+1)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == n {
			return true
		}
		for v := 1; v <= n; v++ {
			w := r.A[i] - v
			if w < 1 || w > n || used1[v] || used2[w] {
				continue
			}
			used1[v], used2[w] = true, true
			lam1[i], lam2[i] = v, w
			if rec(i + 1) {
				return true
			}
			used1[v], used2[w] = false, false
		}
		return false
	}
	if !rec(0) {
		return nil, nil, false
	}
	return lam1, lam2, true
}

// RandomYes draws a YES instance by composing two random permutations.
func RandomYes(rng *rand.Rand, n int) RN3DM {
	p1 := rng.Perm(n)
	p2 := rng.Perm(n)
	a := make([]int, n)
	for i := 0; i < n; i++ {
		a[i] = p1[i] + 1 + p2[i] + 1
	}
	return RN3DM{A: a}
}

// NoInstance returns a valid-looking (sum and range conditions hold) NO
// instance for n ≥ 4: two entries equal to 2 force λ1(i)=λ2(i)=1 twice,
// which no permutation pair allows. For n < 4 every vector satisfying the
// necessary conditions is solvable, so no such instance exists.
func NoInstance(n int) (RN3DM, error) {
	if n < 4 {
		return RN3DM{}, fmt.Errorf("reduction: every valid RN3DM instance with n=%d is YES", n)
	}
	a := []int{2, 2, 2 * n, 2 * n}
	for i := 4; i < n; i++ {
		a = append(a, n+1)
	}
	r := RN3DM{A: a}
	if !r.Valid() {
		return RN3DM{}, fmt.Errorf("reduction: internal error: NO instance fails validity")
	}
	return r, nil
}
