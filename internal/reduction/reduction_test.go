package reduction

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/orchestrate"
	"repro/internal/plan"
	"repro/internal/rat"
)

// --- RN3DM ---

func TestRN3DMSolveYes(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := gen.NewRand(seed)
		n := 2 + rng.Intn(6)
		r := RandomYes(rng, n)
		if !r.Valid() {
			t.Fatalf("seed %d: YES instance fails validity", seed)
		}
		lam1, lam2, ok := r.Solve()
		if !ok {
			t.Fatalf("seed %d: YES instance unsolved", seed)
		}
		seen1 := make([]bool, n+1)
		seen2 := make([]bool, n+1)
		for i := 0; i < n; i++ {
			if lam1[i]+lam2[i] != r.A[i] {
				t.Fatalf("seed %d: λ1+λ2 != A at %d", seed, i)
			}
			if lam1[i] < 1 || lam1[i] > n || seen1[lam1[i]] || seen2[lam2[i]] {
				t.Fatalf("seed %d: not a permutation pair", seed)
			}
			seen1[lam1[i]] = true
			seen2[lam2[i]] = true
		}
	}
}

func TestRN3DMNoInstance(t *testing.T) {
	for n := 4; n <= 8; n++ {
		r, err := NoInstance(n)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Valid() {
			t.Fatalf("n=%d: NO instance must pass the necessary conditions", n)
		}
		if _, _, ok := r.Solve(); ok {
			t.Fatalf("n=%d: NO instance solved", n)
		}
	}
	if _, err := NoInstance(3); err == nil {
		t.Fatal("n=3 has no valid NO instance")
	}
}

func TestRN3DMInvalidInstances(t *testing.T) {
	if (RN3DM{A: []int{1, 5}}).Valid() { // entry below 2
		t.Fatal("A[i]=1 must be invalid")
	}
	if (RN3DM{A: []int{3, 4}}).Valid() { // sum != n(n+1)
		t.Fatal("wrong sum must be invalid")
	}
	if _, _, ok := (RN3DM{A: []int{3, 4}}).Solve(); ok {
		t.Fatal("invalid instance must not solve")
	}
}

// --- Proposition 2: one-port period orchestration gadget ---

func TestProp2GadgetStructure(t *testing.T) {
	r := RandomYes(gen.NewRand(1), 3)
	g, err := NewOrchPeriodGadget(r)
	if err != nil {
		t.Fatal(err)
	}
	w := g.Graph.Weighted()
	// The six zero-idle services have Cexec exactly 2n+3.
	for _, v := range []int{g.c1, g.c2n2, g.c2n3, g.c2n4, g.c2n5} {
		if !w.Cexec(v, plan.InOrder).Equal(g.K) {
			t.Fatalf("Cexec(%d) = %s, want %s", v, w.Cexec(v, plan.InOrder), g.K)
		}
	}
	for _, v := range g.evens {
		if !w.Cexec(v, plan.InOrder).Equal(g.K) {
			t.Fatalf("even service Cexec = %s", w.Cexec(v, plan.InOrder))
		}
	}
	// The one-port lower bound is exactly K.
	if !w.PeriodLowerBound(plan.InOrder).Equal(g.K) {
		t.Fatalf("bound = %s, want %s", w.PeriodLowerBound(plan.InOrder), g.K)
	}
}

func TestProp2YesInstancesReachK(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		for _, n := range []int{2, 3, 4} {
			r := RandomYes(gen.NewRand(seed), n)
			lam1, lam2, ok := r.Solve()
			if !ok {
				t.Fatal("unsolvable YES instance")
			}
			g, err := NewOrchPeriodGadget(r)
			if err != nil {
				t.Fatal(err)
			}
			w := g.Graph.Weighted()
			orders := g.WitnessOrders(lam1, lam2)
			l, err := orchestrate.InOrderPeriodWithOrders(w, orders)
			if err != nil {
				t.Fatalf("seed %d n=%d: %v", seed, n, err)
			}
			if !l.Lambda().Equal(g.K) {
				t.Fatalf("seed %d n=%d: witness period %s, want %s", seed, n, l.Lambda(), g.K)
			}
			// INORDER-valid implies OUTORDER-valid: Prop 2 and 3 share it.
			if err := l.Validate(plan.OutOrder); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestProp2NoInstanceStaysAboveK(t *testing.T) {
	r, err := NoInstance(4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewOrchPeriodGadget(r)
	if err != nil {
		t.Fatal(err)
	}
	w := g.Graph.Weighted()
	// Heuristic search (exhaustive would need (n+2)!² evaluations); by
	// Prop 2 no operation list reaches K on a NO instance, so any valid
	// result must be strictly above.
	res, err := orchestrate.InOrderPeriod(w, orchestrate.Options{MaxExhaustive: 1, LocalSearchPasses: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.Greater(g.K) {
		t.Fatalf("NO instance reached period %s ≤ K=%s: contradicts Prop 2", res.Value, g.K)
	}
}

// --- Proposition 9: fork-join latency orchestration gadget ---

func TestProp9Equivalence(t *testing.T) {
	// YES instances: exact one-port latency == K. NO instance: > K.
	for seed := int64(0); seed < 5; seed++ {
		for _, n := range []int{2, 3, 4} {
			r := RandomYes(gen.NewRand(seed), n)
			g, err := NewForkJoinLatencyGadget(r)
			if err != nil {
				t.Fatal(err)
			}
			res, err := orchestrate.OnePortLatency(g.Graph.Weighted(), orchestrate.Options{MaxExhaustive: 2000})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Exact {
				t.Fatal("fork-join order space must be searched exhaustively")
			}
			if !res.Value.Equal(g.K) {
				t.Fatalf("seed %d n=%d: YES latency %s, want %s", seed, n, res.Value, g.K)
			}
		}
	}
	no, err := NoInstance(4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewForkJoinLatencyGadget(no)
	if err != nil {
		t.Fatal(err)
	}
	res, err := orchestrate.OnePortLatency(g.Graph.Weighted(), orchestrate.Options{MaxExhaustive: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || !res.Value.Greater(g.K) {
		t.Fatalf("NO latency %s (exact=%v), want > %s", res.Value, res.Exact, g.K)
	}
}

// --- Proposition 13: MINLATENCY gadget ---

func TestProp13YesForkJoinMeetsK(t *testing.T) {
	// K is the proof's upper bound: YES instances admit a fork-join
	// schedule of latency ≤ K (the exact optimum can be marginally below),
	// while any plan of latency ≤ K yields an RN3DM solution.
	for seed := int64(0); seed < 4; seed++ {
		for _, n := range []int{2, 3} {
			r := RandomYes(gen.NewRand(seed), n)
			g, err := NewMinLatencyGadget(r)
			if err != nil {
				t.Fatal(err)
			}
			fj, err := g.ForkJoinPlan()
			if err != nil {
				t.Fatal(err)
			}
			res, err := orchestrate.OnePortLatency(fj.Weighted(), orchestrate.Options{MaxExhaustive: 2000})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Exact {
				t.Fatal("fork-join search must be exhaustive")
			}
			if !res.Value.Leq(g.K) {
				t.Fatalf("seed %d n=%d: fork-join latency %s exceeds K=%s", seed, n, res.Value, g.K)
			}
			// The bound is tight: the optimum sits within σf of K.
			slack := g.K.Sub(res.Value)
			if slack.Greater(rat.New(1, int64(20*n))) {
				t.Fatalf("seed %d n=%d: K slack %s unexpectedly large", seed, n, slack)
			}
		}
	}
	// NO side: latency ≤ K would yield an RN3DM solution, so the exact
	// fork-join optimum must exceed K.
	no, err := NoInstance(4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewMinLatencyGadget(no)
	if err != nil {
		t.Fatal(err)
	}
	fj, err := g.ForkJoinPlan()
	if err != nil {
		t.Fatal(err)
	}
	res, err := orchestrate.OnePortLatency(fj.Weighted(), orchestrate.Options{MaxExhaustive: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || !res.Value.Greater(g.K) {
		t.Fatalf("NO fork-join latency %s (exact=%v) must exceed K=%s", res.Value, res.Exact, g.K)
	}
}

func TestProp13CompetingPlansAreWorse(t *testing.T) {
	r := RandomYes(gen.NewRand(7), 2)
	g, err := NewMinLatencyGadget(r)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's lower-bound cases: J unfiltered costs ≥ cj+σj ≫ K; a
	// filter service without the fork ahead costs ≥ its own cost ≫ K.
	parallel, err := plan.Parallel(g.App)
	if err != nil {
		t.Fatal(err)
	}
	res, err := orchestrate.OnePortLatency(parallel.Weighted(), orchestrate.Options{MaxExhaustive: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.Greater(g.K) {
		t.Fatalf("parallel plan latency %s must exceed K=%s", res.Value, g.K)
	}
}

// --- Proposition 5: MINPERIOD-OVERLAP gadget ---

func TestProp5ConstantsSatisfyProofInequalities(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 6} {
		a, b, gamma, err := prop5Constants(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		lo, hi := rat.New(3, 4), rat.New(4, 5)
		if !a.PowInt(2*n).Greater(lo) || !a.PowInt(2*n).Less(hi) {
			t.Fatalf("n=%d: a out of band", n)
		}
		if !b.PowInt(2*n).Greater(lo) || !b.PowInt(2*n).Less(hi) {
			t.Fatalf("n=%d: b out of band", n)
		}
		if !a.Less(b) || !gamma.Greater(rat.One) || !gamma.PowInt(n).Less(b.Div(a)) {
			t.Fatalf("n=%d: ordering constraints violated", n)
		}
	}
}

func TestProp5WitnessPlanHasPeriodExactlyK(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		for _, n := range []int{3, 4, 5} {
			r := RandomYes(gen.NewRand(seed), n)
			lam1, lam2, ok := r.Solve()
			if !ok {
				t.Fatal("unsolvable YES instance")
			}
			g, err := NewMinPeriodOverlapGadget(r)
			if err != nil {
				t.Fatal(err)
			}
			eg, err := g.WitnessPlan(lam1, lam2)
			if err != nil {
				t.Fatal(err)
			}
			// Theorem 1: the OVERLAP period equals the bound; the proof
			// makes every Cexec ≤ K with equality on the C1 services.
			res, err := orchestrate.OverlapPeriod(eg.Weighted())
			if err != nil {
				t.Fatal(err)
			}
			if !res.Value.Equal(g.K) {
				t.Fatalf("seed %d n=%d: witness period %s, want %s", seed, n, res.Value, g.K)
			}
		}
	}
}

func TestProp5WrongMatchingExceedsK(t *testing.T) {
	r := RN3DM{A: []int{2, 4, 6}} // solved by identity permutations
	g, err := NewMinPeriodOverlapGadget(r)
	if err != nil {
		t.Fatal(err)
	}
	// λ1 correct, λ2 deliberately misaligned: some chain gets
	// λ1(i)+λ2(i) > A[i], pushing Ccomp(C3,i) above K.
	eg, err := g.WitnessPlan([]int{1, 2, 3}, []int{3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := orchestrate.OverlapPeriod(eg.Weighted())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.Greater(g.K) {
		t.Fatalf("wrong matching period %s must exceed K=%s", res.Value, g.K)
	}
}

// --- Proposition 17: 2-Partition forest gadget (reproduction finding) ---

func TestProp17GadgetConstruction(t *testing.T) {
	tp := TwoPartition{X: []int64{1, 2, 3, 4}}
	g, err := NewForestLatencyGadget(tp)
	if err != nil {
		t.Fatal(err)
	}
	// All selectivities lie in (0,1); β < 1/2; terminal cost > 1.
	for i := 0; i < len(tp.X); i++ {
		s := g.App.Selectivity(i)
		if s.Sign() <= 0 || s.Geq(rat.One) {
			t.Fatalf("selectivity %s out of (0,1)", s)
		}
	}
	if g.Beta.Geq(rat.New(1, 2)) {
		t.Fatalf("β = %s ≥ 1/2", g.Beta)
	}
	if g.App.Cost(g.Terminal).Leq(rat.One) {
		t.Fatal("terminal cost must exceed 1")
	}
	if _, err := NewForestLatencyGadget(TwoPartition{X: []int64{1}}); err == nil {
		t.Fatal("n=1 must be rejected")
	}
	if _, err := NewForestLatencyGadget(TwoPartition{X: []int64{0, 1}}); err == nil {
		t.Fatal("non-positive entries must be rejected")
	}
}

func TestTwoPartitionSolve(t *testing.T) {
	if _, ok := (TwoPartition{X: []int64{1, 2, 3, 4}}).Solve(); !ok {
		t.Fatal("{1,2,3,4} is solvable (1+4 = 2+3)")
	}
	if sub, ok := (TwoPartition{X: []int64{2, 2, 2, 3, 5}}).Solve(); !ok {
		t.Fatal("{2,2,2,3,5} is solvable")
	} else {
		s := int64(0)
		for i, in := range sub {
			if in {
				s += []int64{2, 2, 2, 3, 5}[i]
			}
		}
		if s != 7 {
			t.Fatalf("subset sums to %d, want 7", s)
		}
	}
	if _, ok := (TwoPartition{X: []int64{1, 1, 4, 8}}).Solve(); ok {
		t.Fatal("{1,1,4,8} has no equal partition")
	}
	if _, ok := (TwoPartition{X: []int64{1, 1, 1}}).Solve(); ok {
		t.Fatal("odd total cannot partition")
	}
}

// TestProp17DiscrepancyFinding documents a reproduction finding: with the
// constants printed in the paper, the Prop. 17 gadget does not separate
// YES from NO instances in exact arithmetic.
//
//   - Under the paper's full §2 cost model, every chain communication has
//     volume ≈ 1 while chaining saves only O(x/A) computation, so the
//     empty chain is optimal for every instance.
//   - Under the proof's own communication-free chain-latency formula, the
//     latency is monotone decreasing in the chained subset's sum (the
//     claimed quadratic term is smaller than stated by a factor ≈ S/A),
//     so the full chain is optimal for every instance.
//
// Either way min-latency plans do not encode 2-Partition with the printed
// K. The test pins down both behaviours so any future fix is visible.
func TestProp17DiscrepancyFinding(t *testing.T) {
	yes := TwoPartition{X: []int64{1, 2, 3, 4}}
	no := TwoPartition{X: []int64{1, 1, 4, 8}}
	for _, tp := range []TwoPartition{yes, no} {
		g, err := NewForestLatencyGadget(tp)
		if err != nil {
			t.Fatal(err)
		}
		n := len(tp.X)
		empty := make([]bool, n)
		full := make([]bool, n)
		for i := range full {
			full[i] = true
		}
		// Full model: the empty chain beats the full chain by ≈ n (the
		// inter-service communications).
		le, err := g.SubsetLatency(empty)
		if err != nil {
			t.Fatal(err)
		}
		lf, err := g.SubsetLatency(full)
		if err != nil {
			t.Fatal(err)
		}
		if !le.Less(lf) {
			t.Fatal("full model: empty chain no longer dominates; discrepancy resolved?")
		}
		// Proof's model: latency decreases monotonically with the subset
		// sum, so the full chain is best and is below K for YES and NO
		// alike.
		if !g.SubsetLatencyNoComm(full).Less(g.SubsetLatencyNoComm(empty)) {
			t.Fatal("no-comm model: chaining no longer helps; discrepancy resolved?")
		}
		if !g.SubsetLatencyNoComm(full).Leq(g.K) {
			t.Fatal("no-comm full chain above K; discrepancy resolved?")
		}
	}
}
