package reduction

import (
	"fmt"
	"sort"

	"repro/internal/orchestrate"
	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/workflow"
)

// --- Proposition 2/3: period orchestration gadget (OUTORDER/INORDER) ---

// OrchPeriodGadget is the execution graph of Figure 9: computing its
// optimal one-port period decides RN3DM. The instance has a period-(2n+3)
// operation list iff the RN3DM instance is YES.
type OrchPeriodGadget struct {
	R RN3DM
	// Graph is the fixed execution graph the orchestration problem is posed
	// on.
	Graph *plan.ExecGraph
	// K is the decision bound 2n+3.
	K rat.Rat

	n int
	// service indices
	c1, c2n2, c2n3, c2n4, c2n5 int
	evens, odds                []int // C_{2i} and C_{2i+1} for i = 1..n
}

// NewOrchPeriodGadget builds the Proposition 2 gadget for instance r.
func NewOrchPeriodGadget(r RN3DM) (*OrchPeriodGadget, error) {
	n := r.N()
	if n < 1 {
		return nil, fmt.Errorf("reduction: empty RN3DM instance")
	}
	g := &OrchPeriodGadget{R: r, n: n, K: rat.I(int64(2*n + 3))}
	services := make([]workflow.Service, 2*n+5)
	for i := range services {
		services[i] = workflow.Service{Selectivity: rat.One}
	}
	g.c1 = 0
	services[g.c1].Cost = rat.I(int64(n))
	for i := 1; i <= n; i++ {
		even := 2*i - 1 // C_{2i}
		odd := 2 * i    // C_{2i+1}
		services[even].Cost = rat.I(int64(2*n + 1))
		services[odd].Cost = rat.I(int64(2*n + 1 - r.A[i-1]))
		g.evens = append(g.evens, even)
		g.odds = append(g.odds, odd)
	}
	g.c2n2 = 2*n + 1
	g.c2n3 = 2*n + 2
	g.c2n4 = 2*n + 3
	g.c2n5 = 2*n + 4
	services[g.c2n2].Cost = rat.I(int64(2*n + 1))
	services[g.c2n3].Cost = rat.I(int64(2*n + 1))
	services[g.c2n4].Cost = rat.I(int64(2*n + 1))
	services[g.c2n5].Cost = rat.I(int64(n))
	app, err := workflow.New(services, nil)
	if err != nil {
		return nil, err
	}
	var edges [][2]int
	for i := 0; i < n; i++ {
		edges = append(edges,
			[2]int{g.c1, g.evens[i]},
			[2]int{g.evens[i], g.odds[i]},
			[2]int{g.odds[i], g.c2n5})
	}
	edges = append(edges,
		[2]int{g.c1, g.c2n2}, [2]int{g.c2n2, g.c2n3}, [2]int{g.c2n3, g.c2n5},
		[2]int{g.c1, g.c2n4}, [2]int{g.c2n4, g.c2n5})
	eg, err := plan.Build(app, edges)
	if err != nil {
		return nil, err
	}
	g.Graph = eg
	return g, nil
}

// WitnessOrders returns the per-server communication orders the YES proof
// prescribes for permutations lam1/lam2 (1-based): C1 sends to C_{2n+2}
// first, then the even services in λ1 order, then C_{2n+4}; C_{2n+5}
// receives from C_{2n+4} first, then the odd services by decreasing λ2,
// then C_{2n+3}.
func (g *OrchPeriodGadget) WitnessOrders(lam1, lam2 []int) orchestrate.Orders {
	w := g.Graph.Weighted()
	orders := orchestrate.DefaultOrders(w)

	edgeIdx := func(from, to int) int {
		idx := w.EdgeIndex(plan.Edge{From: from, To: to})
		if idx < 0 {
			panic(fmt.Sprintf("reduction: missing edge %d->%d", from, to))
		}
		return idx
	}
	// C1's send order.
	var out []int
	out = append(out, edgeIdx(g.c1, g.c2n2))
	evenByPos := make([]int, g.n) // position λ1(i) (1-based) -> even service
	for i := 0; i < g.n; i++ {
		evenByPos[lam1[i]-1] = g.evens[i]
	}
	for _, even := range evenByPos {
		out = append(out, edgeIdx(g.c1, even))
	}
	out = append(out, edgeIdx(g.c1, g.c2n4))
	orders.Out[g.c1] = out

	// C_{2n+5}'s receive order.
	var in []int
	in = append(in, edgeIdx(g.c2n4, g.c2n5))
	oddByPos := make([]int, g.n) // position n+1-λ2(i) -> odd service
	for i := 0; i < g.n; i++ {
		oddByPos[g.n-lam2[i]] = g.odds[i]
	}
	for _, odd := range oddByPos {
		in = append(in, edgeIdx(odd, g.c2n5))
	}
	in = append(in, edgeIdx(g.c2n3, g.c2n5))
	orders.In[g.c2n5] = in
	return orders
}

// --- Proposition 9/10/11: fork-join latency orchestration gadget ---

// ForkJoinLatencyGadget is the Figure 12 instance: n+2 unit-selectivity
// services arranged as a fork-join; the optimal one-port latency is
// n²+n+4 iff the RN3DM instance is YES.
type ForkJoinLatencyGadget struct {
	R     RN3DM
	Graph *plan.ExecGraph
	K     rat.Rat
}

// NewForkJoinLatencyGadget builds the Proposition 9 gadget.
func NewForkJoinLatencyGadget(r RN3DM) (*ForkJoinLatencyGadget, error) {
	n := r.N()
	if n < 1 {
		return nil, fmt.Errorf("reduction: empty RN3DM instance")
	}
	services := make([]workflow.Service, n+2)
	services[0] = workflow.Service{Cost: rat.One, Selectivity: rat.One} // C0
	for i := 1; i <= n; i++ {
		// B[i] = n − A[i] + n².
		services[i] = workflow.Service{
			Cost:        rat.I(int64(n - r.A[i-1] + n*n)),
			Selectivity: rat.One,
		}
	}
	services[n+1] = workflow.Service{Cost: rat.One, Selectivity: rat.One} // C_{n+1}
	app, err := workflow.New(services, nil)
	if err != nil {
		return nil, err
	}
	var edges [][2]int
	for i := 1; i <= n; i++ {
		edges = append(edges, [2]int{0, i}, [2]int{i, n + 1})
	}
	eg, err := plan.Build(app, edges)
	if err != nil {
		return nil, err
	}
	return &ForkJoinLatencyGadget{
		R:     r,
		Graph: eg,
		K:     rat.I(int64(n + 4 + n*n)),
	}, nil
}

// --- Proposition 13/14/15: MINLATENCY gadget (full problem) ---

// MinLatencyGadget is the Proposition 13 instance: a fork service F, n
// filter services and a join service J; the optimal plan's latency is at
// most K iff the RN3DM instance is YES (and the optimal plan is the
// fork-join).
type MinLatencyGadget struct {
	R   RN3DM
	App *workflow.App
	K   rat.Rat
	// Fork, Join are the service indices of F and J; the filters are
	// 1..n in instance order.
	Fork, Join int
}

// NewMinLatencyGadget builds the Proposition 13 gadget.
func NewMinLatencyGadget(r RN3DM) (*MinLatencyGadget, error) {
	n := r.N()
	if n < 2 {
		return nil, fmt.Errorf("reduction: Proposition 13 gadget needs n ≥ 2")
	}
	inv20n := rat.New(1, int64(20*n))
	sigma := rat.One.Sub(rat.New(1, int64(2*n)))
	services := make([]workflow.Service, n+2)
	services[0] = workflow.Service{Cost: inv20n, Selectivity: inv20n} // F
	for i := 1; i <= n; i++ {
		services[i] = workflow.Service{
			Cost:        rat.I(int64(10*n - r.A[i-1])),
			Selectivity: sigma,
		}
	}
	services[n+1] = workflow.Service{ // J
		Cost:        rat.One,
		Selectivity: rat.I(int64(200*n*n - 1)),
	}
	app, err := workflow.New(services, nil)
	if err != nil {
		return nil, err
	}
	// The paper's bound is K = 1/2 + 10n·σ^n + 1/(20n); its derivation
	// drops the input communication (δ0 = 1 time unit), which every plan
	// pays once at the head of each path, so in the full cost model of
	// §2 the decision threshold is K+1.
	k := rat.New(1, 2).Add(rat.I(int64(10 * n)).Mul(sigma.PowInt(n))).Add(inv20n).Add(rat.One)
	return &MinLatencyGadget{R: r, App: app, K: k, Fork: 0, Join: n + 1}, nil
}

// ForkJoinPlan returns the fork-join execution graph the YES direction uses.
func (g *MinLatencyGadget) ForkJoinPlan() (*plan.ExecGraph, error) {
	n := g.R.N()
	var edges [][2]int
	for i := 1; i <= n; i++ {
		edges = append(edges, [2]int{g.Fork, i}, [2]int{i, g.Join})
	}
	return plan.Build(g.App, edges)
}

// --- Proposition 5: MINPERIOD-OVERLAP gadget ---

// MinPeriodOverlapGadget is the Proposition 5 instance: 3n services whose
// optimal OVERLAP period is K = 3/2 iff the RN3DM instance is YES; the
// optimal plan consists of n independent chains C1,λ1(i) → C2,λ2(i) → C3,i.
type MinPeriodOverlapGadget struct {
	R           RN3DM
	App         *workflow.App
	K           rat.Rat
	A, B, Gamma rat.Rat
	// Index helpers: L1[i], L2[i], L3[i] are the service indices of
	// C_{1,i+1}, C_{2,i+1}, C_{3,i+1}.
	L1, L2, L3 []int
}

// NewMinPeriodOverlapGadget builds the Proposition 5 gadget, choosing
// rational constants a < b in ((3/4)^(1/2n), (4/5)^(1/2n)) and
// γ ∈ (1, (b/a)^(1/n)), verified exactly.
func NewMinPeriodOverlapGadget(r RN3DM) (*MinPeriodOverlapGadget, error) {
	n := r.N()
	if n < 2 {
		return nil, fmt.Errorf("reduction: Proposition 5 gadget needs n ≥ 2")
	}
	a, b, gamma, err := prop5Constants(n)
	if err != nil {
		return nil, err
	}
	k := rat.New(3, 2)
	services := make([]workflow.Service, 3*n)
	g := &MinPeriodOverlapGadget{R: r, K: k, A: a, B: b, Gamma: gamma}
	for i := 1; i <= n; i++ {
		sel := a.Mul(gamma.PowInt(i))
		i1, i2, i3 := i-1, n+i-1, 2*n+i-1
		g.L1 = append(g.L1, i1)
		g.L2 = append(g.L2, i2)
		g.L3 = append(g.L3, i3)
		services[i1] = workflow.Service{Name: fmt.Sprintf("C1_%d", i), Cost: k, Selectivity: sel}
		services[i2] = workflow.Service{Name: fmt.Sprintf("C2_%d", i), Cost: k.MulInt(2).Div(b.AddInt(1)), Selectivity: sel}
		services[i3] = workflow.Service{
			Name:        fmt.Sprintf("C3_%d", i),
			Cost:        k.Div(a.Mul(a)).Mul(gamma.PowInt(-r.A[i-1])),
			Selectivity: k.Div(b.Mul(b)),
		}
	}
	app, err := workflow.New(services, nil)
	if err != nil {
		return nil, err
	}
	g.App = app
	return g, nil
}

// prop5Constants searches dyadic rationals satisfying the proof's exact
// inequalities: 3/4 < a^2n < b^2n < 4/5 and 1 < γ^n < b/a.
func prop5Constants(n int) (a, b, gamma rat.Rat, err error) {
	const den = 1 << 14
	lo, hi := rat.New(3, 4), rat.New(4, 5)
	found := false
	var ks int64
	for k := int64(den - 1); k > den/2; k-- {
		cand := rat.New(k, den)
		p := cand.PowInt(2 * n)
		if p.Less(hi) && p.Greater(lo) {
			ks = k
			found = true
			break
		}
	}
	if !found {
		return a, b, gamma, fmt.Errorf("reduction: no dyadic a for n=%d", n)
	}
	b = rat.New(ks, den)
	a = rat.New(ks-1, den)
	if !a.PowInt(2 * n).Greater(lo) {
		return a, b, gamma, fmt.Errorf("reduction: a^2n below 3/4 for n=%d", n)
	}
	// γ: smallest dyadic above 1 with γ^n < b/a.
	target := b.Div(a)
	for shift := int64(1 << 20); shift >= 2; shift /= 2 {
		cand := rat.One.Add(rat.New(1, shift))
		if cand.PowInt(n).Less(target) {
			return a, b, cand, nil
		}
	}
	return a, b, gamma, fmt.Errorf("reduction: no dyadic γ for n=%d", n)
}

// WitnessPlan returns the n-chain plan of the YES direction for
// permutations lam1, lam2 (1-based): chain C1,λ1(i) → C2,λ2(i) → C3,i.
func (g *MinPeriodOverlapGadget) WitnessPlan(lam1, lam2 []int) (*plan.ExecGraph, error) {
	var edges [][2]int
	for i := 0; i < g.R.N(); i++ {
		edges = append(edges,
			[2]int{g.L1[lam1[i]-1], g.L2[lam2[i]-1]},
			[2]int{g.L2[lam2[i]-1], g.L3[i]})
	}
	return plan.Build(g.App, edges)
}

// --- Proposition 17: 2-Partition forest latency gadget ---

// TwoPartition is a 2-Partition instance over positive integers.
type TwoPartition struct {
	X []int64
}

// Solve reports whether a subset sums to half the total, returning the
// subset mask (exponential; for gadget checks).
func (tp TwoPartition) Solve() ([]bool, bool) {
	total := int64(0)
	for _, x := range tp.X {
		total += x
	}
	if total%2 != 0 {
		return nil, false
	}
	half := total / 2
	n := len(tp.X)
	for mask := 0; mask < 1<<n; mask++ {
		s := int64(0)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s += tp.X[i]
			}
		}
		if s == half {
			out := make([]bool, n)
			for i := 0; i < n; i++ {
				out[i] = mask&(1<<i) != 0
			}
			return out, true
		}
	}
	return nil, false
}

// ForestLatencyGadget is the Proposition 17 instance: n small services plus
// a heavy terminal C_{n+1}; among forest-shaped plans, latency ≤ K is
// achievable iff the 2-Partition instance is YES.
type ForestLatencyGadget struct {
	TP  TwoPartition
	App *workflow.App
	K   rat.Rat
	// Terminal is the index of C_{n+1}.
	Terminal int
	// AA is the paper's big constant A, Beta its β = (A−S)/(2A+S).
	AA, Beta rat.Rat
	S        rat.Rat
}

// NewForestLatencyGadget builds the Proposition 17 gadget.
func NewForestLatencyGadget(tp TwoPartition) (*ForestLatencyGadget, error) {
	n := len(tp.X)
	if n < 2 {
		return nil, fmt.Errorf("reduction: 2-Partition gadget needs n ≥ 2")
	}
	var xm, s int64
	for _, x := range tp.X {
		if x <= 0 {
			return nil, fmt.Errorf("reduction: 2-Partition entries must be positive")
		}
		if x > xm {
			xm = x
		}
		s += x
	}
	// A > (4/3)·n·3^n·β^n·x_M³ with β < 1/2: A = 2·n·3^n·x_M³ suffices and
	// keeps the rationals manageable.
	pow3 := int64(1)
	for i := 0; i < n; i++ {
		pow3 *= 3
	}
	bigA := rat.I(2 * int64(n) * pow3 * xm * xm * xm)
	S := rat.I(s)
	beta := bigA.Sub(S).Div(bigA.MulInt(2).Add(S))
	services := make([]workflow.Service, n+1)
	for i := 0; i < n; i++ {
		xi := rat.I(tp.X[i])
		ci := xi.Div(bigA)
		services[i] = workflow.Service{
			Cost:        ci,
			Selectivity: rat.One.Sub(ci).Add(beta.Mul(ci).Mul(ci)),
		}
	}
	services[n] = workflow.Service{
		Cost:        bigA.MulInt(2).Add(S).Div(bigA.MulInt(2).Sub(S.MulInt(2))),
		Selectivity: rat.One,
	}
	app, err := workflow.New(services, nil)
	if err != nil {
		return nil, err
	}
	// K = c_{n+1} − 3S²/(8A(A−S)) + n·3^n·β^n·x_M³/A³.
	k := services[n].Cost.
		Sub(S.Mul(S).MulInt(3).Div(bigA.MulInt(8).Mul(bigA.Sub(S)))).
		Add(rat.I(int64(n) * pow3).Mul(beta.PowInt(n)).Mul(rat.I(xm * xm * xm)).Div(bigA.PowInt(3)))
	return &ForestLatencyGadget{
		TP: tp, App: app, K: k, Terminal: n, AA: bigA, Beta: beta, S: S,
	}, nil
}

// SubsetPlan builds the forest plan for a subset mask: the chosen services
// form a chain (in index order) feeding C_{n+1}; the rest run in parallel.
func (g *ForestLatencyGadget) SubsetPlan(subset []bool) (*plan.ExecGraph, error) {
	var chain []int
	for i, in := range subset {
		if in {
			chain = append(chain, i)
		}
	}
	sort.Ints(chain)
	chain = append(chain, g.Terminal)
	var edges [][2]int
	for i := 0; i+1 < len(chain); i++ {
		edges = append(edges, [2]int{chain[i], chain[i+1]})
	}
	return plan.Build(g.App, edges)
}

// SubsetLatency returns the exact optimal latency of the subset plan under
// the full communication model of §2 (forest plans have a polynomial
// optimal latency, Prop. 12).
//
// Reproduction note: under the full model this gadget degenerates — every
// chain communication costs ≈1 time unit to save only O(x/A) computation,
// so the empty chain is always optimal. The Prop. 17 proof evaluates chain
// latency as Σ (selectivity products)·costs only, i.e. with free
// communications; use SubsetLatencyNoComm for the proof's semantics.
func (g *ForestLatencyGadget) SubsetLatency(subset []bool) (rat.Rat, error) {
	eg, err := g.SubsetPlan(subset)
	if err != nil {
		return rat.Zero, err
	}
	res, err := orchestrate.TreeLatency(eg.Weighted())
	if err != nil {
		return rat.Zero, err
	}
	return res.Value, nil
}

// SubsetLatencyNoComm evaluates the chain latency exactly as the Prop. 17
// proof does: the sum over chain services of (product of upstream
// selectivities)·cost, plus the terminal service's scaled cost — no
// communication terms. The decision "min over subsets ≤ K" under this
// semantics is equivalent to the 2-Partition instance.
func (g *ForestLatencyGadget) SubsetLatencyNoComm(subset []bool) rat.Rat {
	var chain []int
	for i, in := range subset {
		if in {
			chain = append(chain, i)
		}
	}
	sort.Ints(chain)
	chain = append(chain, g.Terminal)
	total := rat.Zero
	prod := rat.One
	for _, s := range chain {
		total = total.Add(prod.Mul(g.App.Cost(s)))
		prod = prod.Mul(g.App.Selectivity(s))
	}
	return total
}
