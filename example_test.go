package filtering_test

import (
	"fmt"

	filtering "repro"
)

// Reproduce the paper's §2.3 example: orchestrate the Figure-1 execution
// graph under each communication model.
func Example() {
	app := filtering.Uniform(5, filtering.Int(4), filtering.Int(1))
	eg, err := filtering.BuildGraph(app, [][2]int{{0, 1}, {0, 3}, {1, 2}, {2, 4}, {3, 4}})
	if err != nil {
		panic(err)
	}
	for _, m := range filtering.Models {
		sched, err := filtering.Period(eg, m, filtering.OrchestrateOptions{})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %s\n", m, sched.Value)
	}
	// Output:
	// OVERLAP: 4
	// INORDER: 23/3
	// OUTORDER: 7
}

// Optimize a small query plan end to end and execute it.
func ExamplePlanner() {
	app, err := filtering.NewApp([]filtering.Service{
		{Name: "probe", Cost: filtering.Int(1), Selectivity: filtering.NewRat(1, 2)},
		{Name: "score", Cost: filtering.Int(4), Selectivity: filtering.Int(1)},
		{Name: "rank", Cost: filtering.Int(2), Selectivity: filtering.Int(1)},
	}, nil)
	if err != nil {
		panic(err)
	}
	planner := filtering.NewPlanner()
	sol, err := planner.MinimizePeriod(app, filtering.Overlap)
	if err != nil {
		panic(err)
	}
	fmt.Println("period:", sol.Value)
	tr, err := filtering.Replay(sol.Sched.List, 3)
	if err != nil {
		panic(err)
	}
	fmt.Println("completion gap:", tr.Gap(2))
	// Output:
	// period: 2
	// completion gap: 2
}

// The greedy chain of Proposition 16 minimizes latency among chain plans.
func ExampleMinLatency() {
	app := filtering.Uniform(4, filtering.Int(3), filtering.NewRat(1, 2))
	sol, err := filtering.MinLatency(app, filtering.InOrder, filtering.SolveOptions{
		Method: filtering.GreedyChain,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("chain latency:", sol.Value)
	// Output:
	// chain latency: 121/16
}
