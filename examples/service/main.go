// Service quickstart: run the filterd planning service in-process and
// drive its HTTP API end to end — plan an instance, hit the cache with an
// equivalent permuted listing, batch-plan, subscribe to re-plan events,
// drift a cost and watch the warm-started re-plan push one event, restart
// the service over its persistent store and get the same answer warm,
// follow one request ID from the response header through the span ring
// (/debug/requests) to the plan's provenance record (/v1/explain), and
// read the counters — JSON via /v1/stats and Prometheus text via
// /metrics (what a collector scrapes). Then replication (DESIGN.md §4–5):
// a two-owner cluster router loses its preferred owner mid-traffic and
// the co-owner serves the identical answer — zero 5xx, with the loss
// visible on the under-replicated gauge. The finale closes the loop with
// the data plane (internal/exec): execute the planned schedule on a
// synthetic tuple stream whose real cost differs from the declared one,
// watch the executor measure the drift, PATCH the instance, and hot-swap
// to the re-planned schedule — plan → execute → observe → re-plan.
//
// The same API is served standalone by `go run ./cmd/filterd` (add
// -data-dir for persistence, -peers for the cluster router, -log-format
// json for structured logs); everything below works unchanged against it
// (replace the test listener's URL).
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/rat"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/workflow"
)

func main() {
	// The daemon's core, embedded: 2 workers, default cache, persistent
	// plan store (what filterd -data-dir wires up).
	dir, err := os.MkdirTemp("", "filterd-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	// Tracer: a 64-span ring behind GET /debug/requests (filterd's
	// -trace-requests flag). Logger: every daemon log line is structured
	// and carries the request_id of the request that caused it (filterd's
	// -log-level / -log-format flags).
	srv := service.New(service.Config{
		Workers: 2,
		Store:   st,
		Tracer:  obs.NewTracer(64),
		Logger:  slog.New(slog.NewTextHandler(os.Stdout, nil)),
	})
	defer srv.Close()
	ts := httptest.NewServer(service.Handler(srv))
	defer ts.Close()

	// The §2.3 running example: five services of cost 4, selectivity 1.
	instance := `{"services": [
	  {"name": "C1", "cost": "4", "selectivity": "1"},
	  {"name": "C2", "cost": "4", "selectivity": "1"},
	  {"name": "C3", "cost": "4", "selectivity": "1"},
	  {"name": "C4", "cost": "4", "selectivity": "1"},
	  {"name": "C5", "cost": "4", "selectivity": "1"}]}`

	fmt.Println("== POST /v1/plan: first request solves ==")
	plan1 := post(ts.URL+"/v1/plan", fmt.Sprintf(
		`{"instance": %s, "model": "inorder", "objective": "period"}`, instance))
	fmt.Printf("  period %s under inorder (outcome: %s)\n  hash %s\n",
		plan1["value"], plan1["outcome"], plan1["hash"])

	fmt.Println("== POST /v1/plan: identical request is a cache hit ==")
	plan2 := post(ts.URL+"/v1/plan", fmt.Sprintf(
		`{"instance": %s, "model": "inorder", "objective": "period"}`, instance))
	fmt.Printf("  period %s (outcome: %s)\n", plan2["value"], plan2["outcome"])

	fmt.Println("== canonicalization: a permuted listing lands on the same hash ==")
	permuted := `{"services": [
	  {"name": "C5", "cost": "4", "selectivity": "1"},
	  {"name": "C3", "cost": "4", "selectivity": "1"},
	  {"name": "C1", "cost": "4", "selectivity": "1"},
	  {"name": "C4", "cost": "4", "selectivity": "1"},
	  {"name": "C2", "cost": "4", "selectivity": "1"}]}`
	plan3 := post(ts.URL+"/v1/plan", fmt.Sprintf(
		`{"instance": %s, "model": "inorder", "objective": "period"}`, permuted))
	fmt.Printf("  same hash: %v (outcome: %s)\n",
		plan3["hash"] == plan1["hash"], plan3["outcome"])

	fmt.Println("== POST /v1/batch: all three models in one request ==")
	batch := post(ts.URL+"/v1/batch", fmt.Sprintf(`{"requests": [
	  {"instance": %[1]s, "model": "overlap"},
	  {"instance": %[1]s, "model": "inorder"},
	  {"instance": %[1]s, "model": "outorder"}]}`, instance))
	for _, r := range batch["results"].([]any) {
		p := r.(map[string]any)["plan"].(map[string]any)
		fmt.Printf("  %-8s period %s\n", p["model"], p["value"])
	}

	fmt.Println("== GET /v1/subscribe/{hash}: listen for re-plan events ==")
	sub, err := http.Get(fmt.Sprintf("%s/v1/subscribe/%s", ts.URL, plan1["hash"]))
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Body.Close()
	events := bufio.NewReader(sub.Body)
	if _, err := events.ReadString('\n'); err != nil { // ": subscribed <hash>" preamble
		log.Fatal(err)
	}
	fmt.Println("  subscribed (server-sent events)")

	fmt.Println("== PATCH /v1/instance/{hash}: C3's cost drifts 4 → 8 ==")
	drift := patch(fmt.Sprintf("%s/v1/instance/%s", ts.URL, plan1["hash"]),
		`{"model": "inorder", "objective": "period", "method": "bnb",
		  "updates": [{"service": "C3", "cost": "8"}]}`)
	fmt.Printf("  period %s → %s (warm start: %v, incumbent %v)\n",
		drift["old_value"], drift["new_value"], drift["warm_start"], drift["incumbent"])

	fmt.Println("== the re-plan pushed one SSE event to the subscriber ==")
	for {
		line, err := events.ReadString('\n')
		if err != nil {
			log.Fatal(err)
		}
		if strings.HasPrefix(line, "data: ") {
			fmt.Printf("  event: %s", strings.TrimPrefix(line, "data: "))
			break
		}
	}

	fmt.Println("== restart over the persistent store: warm, bit-identical ==")
	srv2 := service.New(service.Config{Workers: 2, Store: st})
	defer srv2.Close()
	ts2 := httptest.NewServer(service.Handler(srv2))
	defer ts2.Close()
	replay := post(ts2.URL+"/v1/plan", fmt.Sprintf(
		`{"instance": %s, "model": "inorder", "objective": "period"}`, instance))
	fmt.Printf("  period %s (outcome: %s — no solve after the restart; value unchanged: %v)\n",
		replay["value"], replay["outcome"], replay["value"] == plan1["value"])

	fmt.Println("== observability: one ID from response header to span to explain ==")
	// Send a request with a client-chosen X-Filterd-Request-Id (omit it
	// and the service generates one); the same ID comes back on the
	// response, names the request's span in /debug/requests, and tags the
	// plan's provenance record — and any daemon log line it caused.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/plan", strings.NewReader(fmt.Sprintf(
		`{"instance": %s, "model": "inorder", "objective": "period", "method": "bnb"}`, instance)))
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set(obs.HeaderRequestID, "example-rid-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	traced := decode(resp)
	fmt.Printf("  response header %s: %s\n", obs.HeaderRequestID, resp.Header.Get(obs.HeaderRequestID))

	ring := get(ts.URL + "/debug/requests")
	for _, s := range ring["spans"].([]any) {
		span := s.(map[string]any)
		if span["id"] != "example-rid-1" {
			continue
		}
		fmt.Printf("  span: route=%v status=%v outcome=%v source=%v\n",
			span["route"], span["status"], span["outcome"], span["source"])
		break
	}

	explain := get(fmt.Sprintf("%s/v1/explain/%s", ts.URL, traced["hash"]))
	solver := explain["solver"].(map[string]any)
	fmt.Printf("  explain: request_id=%v method=%v source=%v\n",
		explain["request_id"], explain["method"], explain["source"])
	fmt.Printf("  search effort: %v nodes expanded, %v pruned, %v candidates evaluated\n",
		solver["expanded"], solver["pruned"], solver["evaluated"])

	fmt.Println("== GET /v1/stats ==")
	stats := get(ts.URL + "/v1/stats")
	fmt.Printf("  %v plan requests, %v solves, %v hits, %v coalesced, %v instances registered\n",
		stats["plan_requests"], stats["solves"], stats["cache_hits"],
		stats["cache_coalesced"], stats["registered_instances"])
	fmt.Printf("  persistent: %v (%v writes), %v events published\n",
		stats["persistent"], stats["store_writes"], stats["events_published"])

	fmt.Println("== GET /metrics: the same story in Prometheus text format ==")
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer mresp.Body.Close()
	scanner := bufio.NewScanner(mresp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		// Show the scrape's headline instruments; a real deployment points
		// a Prometheus scrape job at this endpoint (router included —
		// there it also exposes per-peer breaker state and failovers).
		for _, prefix := range []string{
			"filterd_plan_requests_total", "filterd_solves_total",
			"filterd_plancache_hits_total", "filterd_queue_depth",
			"filterd_shed_total", "filterd_solve_seconds_count",
		} {
			if strings.HasPrefix(line, prefix) {
				fmt.Printf("  %s\n", line)
			}
		}
	}

	fmt.Println("== replication: kill a replica mid-traffic, the answer survives ==")
	// The cluster router (filterd -peers ... -replicas 2): with R=2 every
	// shard has two owners, reads fail over down the owner ladder, and the
	// determinism invariant guarantees that whoever answers, answers with
	// the same bytes — so losing a replica is invisible to the client, not
	// merely survivable. (scripts/smoke_chaos.sh is this story against
	// real processes, under a seeded fault schedule, with gossip re-filling
	// the restarted replica.)
	repA := service.New(service.Config{Workers: 1})
	defer repA.Close()
	tsA := httptest.NewServer(service.Handler(repA))
	defer tsA.Close()
	repB := service.New(service.Config{Workers: 1})
	defer repB.Close()
	tsB := httptest.NewServer(service.Handler(repB))
	defer tsB.Close()
	routerLocal := service.New(service.Config{Workers: 1})
	defer routerLocal.Close()
	router, err := cluster.New(cluster.Config{
		Peers:          []string{tsA.URL, tsB.URL},
		Replicas:       2,
		Local:          routerLocal,
		HealthInterval: 100 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer router.Close()
	gw := httptest.NewServer(router)
	defer gw.Close()

	routedBody := fmt.Sprintf(`{"instance": %s, "model": "inorder", "objective": "period"}`, instance)
	r1, err := http.Post(gw.URL+"/v1/plan", "application/json", strings.NewReader(routedBody))
	if err != nil {
		log.Fatal(err)
	}
	owner := r1.Header.Get("X-Filterd-Shard-Owner")
	routed := decode(r1)
	fmt.Printf("  routed to owner %s: period %s\n", owner, routed["value"])

	// Kill the preferred owner. The next read lands on the co-owner (or,
	// with every owner gone, the router's embedded local solve) — the
	// client sees a 200 and the identical value either way.
	if owner == tsA.URL {
		tsA.Close()
	} else {
		tsB.Close()
	}
	r2, err := http.Post(gw.URL+"/v1/plan", "application/json", strings.NewReader(routedBody))
	if err != nil {
		log.Fatal(err)
	}
	servedBy := r2.Header.Get("X-Filterd-Served-By")
	survived := decode(r2)
	fmt.Printf("  owner killed; served by %s: period %s (unchanged: %v)\n",
		servedBy, survived["value"], survived["value"] == routed["value"])

	// The router's availability census notices the loss: once the dead
	// owner's breaker opens, shards with fewer than R live owners show up
	// in the under-replicated gauge (also on /v1/stats and /metrics).
	for deadline := time.Now().Add(5 * time.Second); router.Stats().UnderReplicated == 0 && time.Now().Before(deadline); {
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("  under-replicated shards: %d (the health loop heals this on restart)\n",
		router.Stats().UnderReplicated)

	fmt.Println("== the data plane: plan → execute → observe → re-plan (internal/exec) ==")
	// The stream executor speaks the same HTTP API the sections above
	// used by hand. The instance DECLARES cost 4 for C3, but the stream
	// it runs actually charges 9 per tuple — after enough samples the
	// executor's estimate is confidently off-declaration, so it PATCHes
	// /v1/instance/{hash} with the measured value and hot-swaps to the
	// re-planned schedule at a round boundary (`go run ./cmd/filterexec`
	// is this loop as a command).
	var app workflow.App
	if err := json.Unmarshal([]byte(instance), &app); err != nil {
		log.Fatal(err)
	}
	trueCost := rat.I(9)
	ex, err := exec.New(exec.Config{
		App: &app,
		Planner: &exec.Client{BaseURL: ts.URL,
			Params: exec.ClientParams{Model: "inorder", Objective: "period"}},
		Seed:    1,
		Workers: 4,
		Truth:   map[string]exec.Truth{"C3": {Cost: &trueCost}},
		Window:  512,
	})
	if err != nil {
		log.Fatal(err)
	}
	report, err := ex.Run(context.Background(), 2048)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  streamed %d tuples in %d rounds (%d emitted)\n",
		report.Tuples, report.Rounds, report.Emitted)
	for _, ep := range report.Episodes {
		fmt.Printf("  round %d: measured drift -> PATCH -> hot swap, value %s -> %s\n",
			ep.Round, ep.OldValue, ep.NewValue)
		for _, u := range ep.Updates {
			if u.Cost != nil {
				fmt.Printf("    %s: declared cost drifted to measured %s\n", u.Service, *u.Cost)
			}
		}
	}
	fmt.Printf("  %d controller patch(es); final plan %.12s... period %s\n",
		report.Patches, report.Hash, report.Period)
}

func post(url, body string) map[string]any {
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		log.Fatal(err)
	}
	return decode(resp)
}

func patch(url, body string) map[string]any {
	req, err := http.NewRequest(http.MethodPatch, url, bytes.NewBufferString(body))
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	return decode(resp)
}

func get(url string) map[string]any {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	return decode(resp)
}

func decode(resp *http.Response) map[string]any {
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	if e, ok := out["error"]; ok {
		log.Fatalf("API error (status %d): %v", resp.StatusCode, e)
	}
	return out
}
