// Quickstart: build the paper's running example (five services of cost 4
// and selectivity 1), pin its Figure-1 execution graph, and compute the
// optimal schedule under each communication model — reproducing the values
// of §2.3: period 4 (OVERLAP), 7 (OUTORDER), 23/3 (INORDER), latency 21.
// Then let the planner search freely over execution graphs and see it beat
// the fixed graph.
package main

import (
	"fmt"
	"log"

	filtering "repro"
)

func main() {
	// Five identical services: cost 4, selectivity 1, no precedence.
	app := filtering.Uniform(5, filtering.Int(4), filtering.Int(1))

	// The Figure-1 execution graph: C1 → {C2, C4}, C2 → C3, {C3, C4} → C5.
	eg, err := filtering.BuildGraph(app, [][2]int{
		{0, 1}, {0, 3}, {1, 2}, {2, 4}, {3, 4},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== orchestration on the fixed Figure-1 graph (paper §2.3) ==")
	for _, m := range filtering.Models {
		sched, err := filtering.Period(eg, m, filtering.OrchestrateOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  optimal period under %-8s = %6s  (lower bound %s)\n",
			m, sched.Value, sched.LowerBound)
	}
	lat, err := filtering.Latency(eg, filtering.InOrder, filtering.OrchestrateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  optimal latency (any model)  = %6s\n\n", lat.Value)

	fmt.Println("== the paper's INORDER schedule, event by event ==")
	ino, err := filtering.Period(eg, filtering.InOrder, filtering.OrchestrateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ino.List.Timeline())

	fmt.Println("== free plan search: the graph itself is a decision ==")
	planner := filtering.NewPlanner()
	for _, m := range filtering.Models {
		sol, err := planner.MinimizePeriod(app, m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  best plan under %-8s: period %s with %s\n", m, sol.Value, sol.Graph)
	}

	// Execute the OVERLAP optimum for 20 data sets and confirm the
	// throughput operationally.
	sol, err := planner.MinimizePeriod(app, filtering.Overlap)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := filtering.Replay(sol.Sched.List, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreplayed 20 data sets: inter-completion gap %s, per-data-set latency %s\n",
		tr.Gap(19), tr.Latency(19))
}
