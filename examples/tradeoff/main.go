// Period/latency trade-off — the bi-criteria question the paper's
// conclusion raises: given a threshold period, what is the best achievable
// latency? Deep chains filter aggressively (good throughput per server) but
// serialize the data path (bad latency); parallel plans respond fast but
// waste the filtering. This example sweeps the period bound between the
// unconstrained optimum and twice that value and prints the latency
// frontier for a filtering-heavy workload under the INORDER model.
package main

import (
	"fmt"
	"log"

	filtering "repro"
)

func main() {
	app := filtering.RandomApp(7, 6, filtering.Filtering)
	fmt.Println("workload:")
	for i := 0; i < app.N(); i++ {
		fmt.Printf("  %-4s cost %-5s selectivity %s\n", app.Name(i), app.Cost(i), app.Selectivity(i))
	}

	perOpt, err := filtering.MinPeriod(app, filtering.InOrder, filtering.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	latOpt, err := filtering.MinLatency(app, filtering.InOrder, filtering.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanchors: optimal period %s (latency unconstrained %s)\n\n",
		perOpt.Value.Decimal(3), latOpt.Value.Decimal(3))

	fmt.Printf("%-14s %-14s %-10s\n", "period bound", "best latency", "plan")
	for i := 0; i <= 6; i++ {
		// bound = Popt · (1 + i/6)
		bound := perOpt.Value.Mul(filtering.Int(6 + int64(i))).Div(filtering.Int(6))
		sol, err := filtering.BiCriteria(app, filtering.InOrder, bound, filtering.SolveOptions{})
		if err != nil {
			fmt.Printf("%-14s infeasible\n", bound.Decimal(3))
			continue
		}
		shape := "forest"
		if sol.Graph.IsChain() {
			shape = "chain"
		} else if sol.Graph.Graph().EdgeCount() == 0 {
			shape = "parallel"
		}
		fmt.Printf("%-14s %-14s %-10s\n", bound.Decimal(3), sol.Value.Decimal(3), shape)
	}
	fmt.Println("\nTightening the period bound never improves latency; the frontier")
	fmt.Println("shows what response time a throughput target costs on this workload.")
}
