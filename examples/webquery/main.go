// Web-service query optimization — the scenario that motivated the paper
// (Srivastava et al., VLDB'06): a query is a set of expensive predicates
// (web-service calls), each with a known selectivity; calls run on
// one-to-one mapped servers and results stream between them. Ordering the
// predicates well lets cheap, highly selective services shrink the stream
// before the expensive ones see it — but with communication costs, deep
// chains also concentrate traffic, so the best plan balances both.
//
// This example builds a 10-predicate query with two precedence constraints,
// compares the structured strategies (parallel, greedy chain, hill-climbed
// plan) under the OVERLAP model, and prints the winning schedule.
package main

import (
	"fmt"
	"log"

	filtering "repro"
)

func main() {
	services := []filtering.Service{
		{Name: "cache-probe", Cost: filtering.NewRat(1, 2), Selectivity: filtering.NewRat(3, 10)},
		{Name: "blacklist", Cost: filtering.Int(1), Selectivity: filtering.NewRat(1, 2)},
		{Name: "geo-filter", Cost: filtering.Int(2), Selectivity: filtering.NewRat(2, 5)},
		{Name: "dedup", Cost: filtering.Int(2), Selectivity: filtering.NewRat(7, 10)},
		{Name: "classify", Cost: filtering.Int(6), Selectivity: filtering.NewRat(9, 10)},
		{Name: "sentiment", Cost: filtering.Int(8), Selectivity: filtering.Int(1)},
		{Name: "translate", Cost: filtering.Int(12), Selectivity: filtering.NewRat(6, 5)},
		{Name: "thumbnail", Cost: filtering.Int(9), Selectivity: filtering.NewRat(3, 2)},
		{Name: "rank", Cost: filtering.Int(4), Selectivity: filtering.Int(1)},
		{Name: "annotate", Cost: filtering.Int(5), Selectivity: filtering.NewRat(11, 10)},
	}
	// Precedence: classification must precede sentiment analysis and
	// translation (they consume its labels).
	app, err := filtering.NewApp(services, [][2]int{{4, 5}, {4, 6}})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== strategies under the OVERLAP model, period objective ==")
	parallel, err := filtering.ParallelGraph(app)
	if err == nil {
		sched, err := filtering.Period(parallel, filtering.Overlap, filtering.OrchestrateOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s period %8s\n", "no filtering (parallel):", sched.Value.Decimal(3))
	} else {
		fmt.Println("  parallel plan infeasible: precedence requires edges")
	}

	best, err := filtering.MinPeriod(app, filtering.Overlap, filtering.SolveOptions{
		Method: filtering.HillClimb, Restarts: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-28s period %8s\n", "hill-climbed plan:", best.Value.Decimal(3))
	fmt.Printf("\nwinning plan: %s\n\n", best.Graph)
	fmt.Println(best.Graph.Describe())
	fmt.Println("schedule (one cycle):")
	fmt.Println(best.Sched.List.Gantt(filtering.Int(0), 72))

	// How much did filtering help the expensive tail services?
	fmt.Println("effective computation times (cost × upstream selectivity product):")
	for i := 0; i < app.N(); i++ {
		fmt.Printf("  %-12s cost %6s -> effective %8s\n",
			app.Name(i), app.Cost(i), best.Graph.Ccomp(i).Decimal(3))
	}
}
