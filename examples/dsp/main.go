// Traditional streaming workflows (DSP-style pipelines without
// selectivities): the paper points out that its model-separation results
// hold for regular workflows too. This example builds both Appendix-B
// counter-example shapes as raw weighted plans — explicit computation times
// and communication volumes, the natural description of a media pipeline —
// and shows the one-port/multi-port gaps:
//
//   - a 6×6 shuffle stage (Figure 5) where multi-port bandwidth sharing
//     finishes the exchange in 6 time units and achieves latency 20, while
//     no one-port schedule can;
//   - a 4×4 scatter stage (Figure 6) where the multi-port period is 12 and
//     every one-port schedule stays above it.
package main

import (
	"fmt"
	"log"

	filtering "repro"
)

func main() {
	fmt.Println("== shuffle stage (Figure 5 shape): latency gap ==")
	shuffle := buildShuffle()
	onePort, err := filtering.LatencyOf(shuffle, filtering.InOrder, filtering.OrchestrateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	multiPort, err := filtering.LatencyOf(shuffle, filtering.Overlap, filtering.OrchestrateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  one-port latency  : %s\n", onePort.Value)
	fmt.Printf("  multi-port latency: %s  (bandwidth sharing moves all 36 units in 6 time units)\n\n", multiPort.Value)
	fmt.Println(multiPort.List.Gantt(filtering.Int(0), 60))

	fmt.Println("== scatter stage (Figure 6 shape): period gap ==")
	scatter := buildScatter()
	mp, err := filtering.PeriodOf(scatter, filtering.Overlap, filtering.OrchestrateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	op, err := filtering.PeriodOf(scatter, filtering.OutOrder, filtering.OrchestrateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  multi-port period          : %s (meets the bound max(Cin, Ccomp, Cout))\n", mp.Value)
	fmt.Printf("  one-port period (best found): %s (the paper proves 12 is unreachable)\n", op.Value)
}

// buildShuffle constructs the Figure-5 bipartite exchange as a traditional
// workflow: six producers emitting volumes 1,2,2,3,3,3 per consumer-group,
// six consumers each receiving volumes {1,2,3}, unit compute upstream and
// 6-unit compute downstream.
func buildShuffle() *filtering.Weighted {
	names := []string{"p1", "p2", "p3", "p4", "p5", "p6", "c1", "c2", "c3", "c4", "c5", "c6"}
	comp := make([]filtering.Rat, 12)
	for i := 0; i < 6; i++ {
		comp[i] = filtering.Int(1)
		comp[6+i] = filtering.Int(6)
	}
	var edges []filtering.CommEdge
	var vols []filtering.Rat
	add := func(e filtering.CommEdge, v int64) {
		edges = append(edges, e)
		vols = append(vols, filtering.Int(v))
	}
	for i := 0; i < 6; i++ {
		add(filtering.CommEdge{From: filtering.InNode, To: i}, 1)
		add(filtering.CommEdge{From: 6 + i, To: filtering.OutNode}, 6)
	}
	// p1 (volume 1) feeds every consumer; p2/p3 (volume 2) feed three
	// each; p4/p5/p6 (volume 3) feed two each.
	for j := 6; j < 12; j++ {
		add(filtering.CommEdge{From: 0, To: j}, 1)
	}
	for j := 6; j < 9; j++ {
		add(filtering.CommEdge{From: 1, To: j}, 2)
	}
	for j := 9; j < 12; j++ {
		add(filtering.CommEdge{From: 2, To: j}, 2)
	}
	add(filtering.CommEdge{From: 3, To: 6}, 3)
	add(filtering.CommEdge{From: 3, To: 9}, 3)
	add(filtering.CommEdge{From: 4, To: 7}, 3)
	add(filtering.CommEdge{From: 4, To: 10}, 3)
	add(filtering.CommEdge{From: 5, To: 8}, 3)
	add(filtering.CommEdge{From: 5, To: 11}, 3)
	w, err := filtering.NewWeighted(names, comp, edges, vols)
	if err != nil {
		log.Fatal(err)
	}
	return w
}

// buildScatter constructs the Figure-6 instance: senders s1/s2/s4 feed all
// four receivers with volumes 3/3/2, s3 feeds the first three with volume
// 4; all computations take 1.
func buildScatter() *filtering.Weighted {
	names := []string{"s1", "s2", "s3", "s4", "r1", "r2", "r3", "r4"}
	comp := make([]filtering.Rat, 8)
	for i := range comp {
		comp[i] = filtering.Int(1)
	}
	var edges []filtering.CommEdge
	var vols []filtering.Rat
	add := func(e filtering.CommEdge, v int64) {
		edges = append(edges, e)
		vols = append(vols, filtering.Int(v))
	}
	for i := 0; i < 4; i++ {
		add(filtering.CommEdge{From: filtering.InNode, To: i}, 1)
		add(filtering.CommEdge{From: 4 + i, To: filtering.OutNode}, 1)
	}
	outVol := []int64{3, 3, 4, 2}
	for _, s := range []int{0, 1, 3} {
		for r := 4; r < 8; r++ {
			add(filtering.CommEdge{From: s, To: r}, outVol[s])
		}
	}
	for r := 4; r < 7; r++ {
		add(filtering.CommEdge{From: 2, To: r}, outVol[2])
	}
	w, err := filtering.NewWeighted(names, comp, edges, vols)
	if err != nil {
		log.Fatal(err)
	}
	return w
}
