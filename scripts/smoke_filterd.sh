#!/usr/bin/env sh
# End-to-end smoke of the filterd planning daemon: start it on a local
# port, plan testdata/webquery8.json over HTTP, and require the objective
# value to match the filterplan CLI on the same instance and options.
# No dependencies beyond a POSIX shell and curl (JSON is picked apart with
# sed so CI images without jq work too).
set -eu

PORT="${FILTERD_PORT:-18321}"
MODEL=inorder
BIN="$(mktemp -d)"
FILTERD_PID=
trap 'kill "$FILTERD_PID" 2>/dev/null || true; rm -rf "$BIN"' EXIT

go build -o "$BIN/filterd" ./cmd/filterd
go build -o "$BIN/filterplan" ./cmd/filterplan

"$BIN/filterd" -addr "127.0.0.1:$PORT" -workers 1 &
FILTERD_PID=$!

# Wait for the daemon to accept requests.
i=0
until curl -sf "http://127.0.0.1:$PORT/v1/stats" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "smoke-filterd: daemon did not come up on port $PORT" >&2
        exit 1
    fi
    sleep 0.2
done

HTTP_VALUE=$(curl -sf -X POST "http://127.0.0.1:$PORT/v1/plan" \
    -d "{\"instance\": $(cat testdata/webquery8.json), \"model\": \"$MODEL\", \"objective\": \"period\"}" \
    | sed -n 's/.*"value": "\([^"]*\)".*/\1/p' | head -1)

# -canon makes the CLI solve the same canonical instance the service does
# (required for heuristic methods, whose plans depend on the index order).
CLI_VALUE=$("$BIN/filterplan" -canon -in testdata/webquery8.json -model "$MODEL" -objective period \
    | sed -n 's/^period = \([^ ]*\) .*/\1/p' | head -1)

# A repeated request must be served from cache.
OUTCOME=$(curl -sf -X POST "http://127.0.0.1:$PORT/v1/plan" \
    -d "{\"instance\": $(cat testdata/webquery8.json), \"model\": \"$MODEL\", \"objective\": \"period\"}" \
    | sed -n 's/.*"outcome": "\([^"]*\)".*/\1/p' | head -1)

echo "smoke-filterd: HTTP value=$HTTP_VALUE CLI value=$CLI_VALUE repeat outcome=$OUTCOME"
[ -n "$HTTP_VALUE" ] || { echo "smoke-filterd: empty HTTP value" >&2; exit 1; }
[ "$HTTP_VALUE" = "$CLI_VALUE" ] || { echo "smoke-filterd: HTTP and CLI disagree" >&2; exit 1; }
[ "$OUTCOME" = "hit" ] || { echo "smoke-filterd: repeat request was not a cache hit" >&2; exit 1; }
echo "smoke-filterd: OK"
