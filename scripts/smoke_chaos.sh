#!/usr/bin/env sh
# Chaos smoke of the replicated cluster (DESIGN.md §4): boot THREE
# replicas gossiping over -sync-peers plus a router with -replicas 2 and
# the deterministic fault injector armed (seeded drops, injected 502s,
# torn response bodies on the forwarding wire). Drive traffic, kill the
# owning replica mid-run, keep driving, then restart it. The whole run
# must show ZERO client-visible 5xx, every answer bit-identical to the
# filterplan CLI, the router's under-replicated gauge rising on the kill
# and healing on the restore, and the restarted replica — which lost all
# in-memory state — re-learning every planned instance from its
# co-replicas via anti-entropy alone (/v1/stats registered_instances).
# No dependencies beyond a POSIX shell and curl (JSON picked apart with
# sed so CI images without jq work too).
set -eu

BASE="${FILTERD_CHAOS_PORT:-18440}"
ROUTER_PORT="$BASE"
REP1_PORT=$((BASE + 1))
REP2_PORT=$((BASE + 2))
REP3_PORT=$((BASE + 3))
MODEL=inorder
BIN="$(mktemp -d)"
REP1_PID=
REP2_PID=
REP3_PID=
ROUTER_PID=
trap 'for p in $REP1_PID $REP2_PID $REP3_PID $ROUTER_PID; do kill "$p" 2>/dev/null || true; done; rm -rf "$BIN"' EXIT

go build -o "$BIN/filterd" ./cmd/filterd
go build -o "$BIN/filterplan" ./cmd/filterplan

# Each replica gossips with the other two; Workers 1 pins the solves
# serial, which is what makes every owner's answer bit-identical.
start_replica() { # port sync1 sync2 -> PID on stdout
    # The daemon must not inherit the command-substitution pipe, or $()
    # would block until it exits: both streams go to the log.
    "$BIN/filterd" -addr "127.0.0.1:$1" -workers 1 \
        -sync-peers "http://127.0.0.1:$2,http://127.0.0.1:$3" \
        -gossip-interval 300ms >>"$BIN/replica-$1.log" 2>&1 &
    echo $!
}
REP1_PID=$(start_replica "$REP1_PORT" "$REP2_PORT" "$REP3_PORT")
REP2_PID=$(start_replica "$REP2_PORT" "$REP1_PORT" "$REP3_PORT")
REP3_PID=$(start_replica "$REP3_PORT" "$REP1_PORT" "$REP2_PORT")

# The router owns the fault schedule: every forward (and health probe)
# rides the seeded injector, so the wire noise is reproducible run to run.
"$BIN/filterd" -addr "127.0.0.1:$ROUTER_PORT" -workers 1 -replicas 2 \
    -peers "http://127.0.0.1:$REP1_PORT,http://127.0.0.1:$REP2_PORT,http://127.0.0.1:$REP3_PORT" \
    -fault-seed 20090822 -fault-drop 12 -fault-error 15 -fault-truncate 18 \
    2>>"$BIN/router.log" &
ROUTER_PID=$!

wait_up() {
    i=0
    until curl -sf "http://127.0.0.1:$1/v1/stats" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "smoke-chaos: daemon did not come up on port $1" >&2
            exit 1
        fi
        sleep 0.2
    done
}
wait_up "$REP1_PORT"
wait_up "$REP2_PORT"
wait_up "$REP3_PORT"
wait_up "$ROUTER_PORT"

REQ_A="{\"instance\": $(cat testdata/webquery8.json), \"model\": \"$MODEL\", \"objective\": \"period\"}"
REQ_B="{\"instance\": $(cat testdata/mixed6.json), \"model\": \"$MODEL\", \"objective\": \"period\"}"

# The fault-free references, from the CLI on the same canonical instances.
CLI_A=$("$BIN/filterplan" -canon -in testdata/webquery8.json -model "$MODEL" -objective period \
    | sed -n 's/^period = \([^ ]*\) .*/\1/p' | head -1)
CLI_B=$("$BIN/filterplan" -canon -in testdata/mixed6.json -model "$MODEL" -objective period \
    | sed -n 's/^period = \([^ ]*\) .*/\1/p' | head -1)
[ -n "$CLI_A" ] && [ -n "$CLI_B" ] || { echo "smoke-chaos: CLI reference failed" >&2; exit 1; }

# hit REQUEST WANT LABEL: one routed request. Any 5xx fails the smoke on
# the spot; the value must match the CLI bit for bit.
BODY="$BIN/body.json"
hit() {
    code=$(curl -s -o "$BODY" -w '%{http_code}' \
        -X POST "http://127.0.0.1:$ROUTER_PORT/v1/plan" -d "$1")
    if [ "$code" -ge 500 ]; then
        echo "smoke-chaos: client saw a $code during $3" >&2
        cat "$BODY" >&2
        exit 1
    fi
    [ "$code" = 200 ] || { echo "smoke-chaos: status $code during $3" >&2; cat "$BODY" >&2; exit 1; }
    value=$(sed -n 's/.*"value": "\([^"]*\)".*/\1/p' "$BODY" | head -1)
    [ "$value" = "$2" ] || { echo "smoke-chaos: value $value != CLI $2 during $3" >&2; exit 1; }
}

# router_stat FIELD: one integer counter off the router's /v1/stats.
router_stat() {
    curl -sf "http://127.0.0.1:$ROUTER_PORT/v1/stats" \
        | sed -n "s/.*\"$1\": \([0-9]*\).*/\1/p" | head -1
}

# Warm traffic: both instances through the router, several rounds, under
# the fault schedule the whole time.
i=0
while [ "$i" -lt 6 ]; do
    hit "$REQ_A" "$CLI_A" "warmup round $i"
    hit "$REQ_B" "$CLI_B" "warmup round $i"
    i=$((i + 1))
done

# Find webquery8's preferred owner so the kill is guaranteed to matter.
HDRS="$BIN/headers.txt"
curl -s -D "$HDRS" -o /dev/null -X POST "http://127.0.0.1:$ROUTER_PORT/v1/plan" -d "$REQ_A"
OWNER=$(tr -d '\r' <"$HDRS" | sed -n 's/^X-Filterd-Shard-Owner: //p' | head -1)
case "$OWNER" in
    *":$REP1_PORT") VICTIM_PID=$REP1_PID; VICTIM_PORT=$REP1_PORT; REP1_PID= ;;
    *":$REP2_PORT") VICTIM_PID=$REP2_PID; VICTIM_PORT=$REP2_PORT; REP2_PID= ;;
    *":$REP3_PORT") VICTIM_PID=$REP3_PID; VICTIM_PORT=$REP3_PORT; REP3_PID= ;;
    *) echo "smoke-chaos: unexpected owner $OWNER" >&2; exit 1 ;;
esac
echo "smoke-chaos: killing owner $OWNER mid-traffic"
kill "$VICTIM_PID"

# Traffic straight through the loss: the co-owner (or the router's local
# solve) absorbs every read, so the client sees neither a 5xx nor a
# different answer.
i=0
while [ "$i" -lt 10 ]; do
    hit "$REQ_A" "$CLI_A" "owner-down round $i"
    hit "$REQ_B" "$CLI_B" "owner-down round $i"
    i=$((i + 1))
done

# The router must notice the loss: some shards below R.
i=0
while :; do
    UNDER=$(router_stat under_replicated_shards)
    [ -n "$UNDER" ] && [ "$UNDER" -gt 0 ] && break
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "smoke-chaos: under-replication never observed" >&2
        curl -sf "http://127.0.0.1:$ROUTER_PORT/v1/stats" >&2 || true
        exit 1
    fi
    hit "$REQ_A" "$CLI_A" "under-replication poll $i"
    sleep 0.2
done
echo "smoke-chaos: under-replicated shards = $UNDER with $OWNER down"

# Restart the victim. It comes back EMPTY (no -data-dir): everything it
# re-learns, it re-learns from its co-replicas via anti-entropy.
case "$VICTIM_PORT" in
    "$REP1_PORT") REP1_PID=$(start_replica "$REP1_PORT" "$REP2_PORT" "$REP3_PORT") ;;
    "$REP2_PORT") REP2_PID=$(start_replica "$REP2_PORT" "$REP1_PORT" "$REP3_PORT") ;;
    "$REP3_PORT") REP3_PID=$(start_replica "$REP3_PORT" "$REP1_PORT" "$REP2_PORT") ;;
esac
wait_up "$VICTIM_PORT"

# Heal: the health loop probes the replica back and the gauge returns to
# zero (breaker cooldown + probe period bound the wait).
i=0
until [ "$(router_stat under_replicated_shards)" = 0 ]; do
    i=$((i + 1))
    if [ "$i" -gt 150 ]; then
        echo "smoke-chaos: cluster did not re-heal after the restart" >&2
        curl -sf "http://127.0.0.1:$ROUTER_PORT/v1/stats" >&2 || true
        exit 1
    fi
    sleep 0.2
done
echo "smoke-chaos: cluster re-healed to full replication"

# Registry convergence: the restarted replica's drift registry must
# re-fill to both planned instances by gossip alone.
i=0
while :; do
    REG=$(curl -sf "http://127.0.0.1:$VICTIM_PORT/v1/stats" \
        | sed -n 's/.*"registered_instances": \([0-9]*\).*/\1/p' | head -1)
    [ -n "$REG" ] && [ "$REG" -ge 2 ] && break
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "smoke-chaos: restarted replica re-learned $REG instances, want 2" >&2
        exit 1
    fi
    sleep 0.2
done
echo "smoke-chaos: restarted replica re-learned $REG instances via gossip"

# Final traffic over the healed cluster, still under the fault schedule.
i=0
while [ "$i" -lt 4 ]; do
    hit "$REQ_A" "$CLI_A" "healed round $i"
    hit "$REQ_B" "$CLI_B" "healed round $i"
    i=$((i + 1))
done

# The gossip wire moved real bytes: a surviving replica reports sync
# traffic on /v1/stats.
SYNCED=$(curl -sf "http://127.0.0.1:$VICTIM_PORT/v1/stats" \
    | sed -n 's/.*"sync_instances": \([0-9]*\).*/\1/p' | head -1)
[ -n "$SYNCED" ] && [ "$SYNCED" -ge 1 ] \
    || { echo "smoke-chaos: restarted replica accepted no synced instances" >&2; exit 1; }

echo "smoke-chaos: OK (zero 5xx, answers bit-identical, registry converged)"
