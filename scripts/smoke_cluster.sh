#!/usr/bin/env sh
# End-to-end smoke of the filterd cluster: boot two replicas and a router,
# plan testdata/webquery8.json through the router, require the routed
# answer to match the filterplan CLI on the same canonical instance, then
# kill the owning replica mid-run and require the router to fail over to
# its local solve with the identical value — and require the dead peer's
# circuit breaker to open on the router's /metrics page, with the per-peer
# failover counter moving and the replicas' own /metrics alive.
# Observability: a client-chosen X-Filterd-Request-Id must round-trip on
# the routed AND the failover response, and /v1/explain's nodes-expanded
# counter must agree with the filterplan CLI's own bnb search report.
# No dependencies beyond a POSIX shell and curl (JSON and headers are
# picked apart with sed so CI images without jq work too).
set -eu

BASE="${FILTERD_CLUSTER_PORT:-18330}"
ROUTER_PORT="$BASE"
REP1_PORT=$((BASE + 1))
REP2_PORT=$((BASE + 2))
MODEL=inorder
BIN="$(mktemp -d)"
REP1_PID=
REP2_PID=
ROUTER_PID=
# The kill loop must tolerate already-cleared PIDs (the failover step
# empties the killed replica's variable): unquoted expansion drops them,
# and per-PID kills keep one bad arg from aborting the rest.
trap 'for p in $REP1_PID $REP2_PID $ROUTER_PID; do kill "$p" 2>/dev/null || true; done; rm -rf "$BIN"' EXIT

go build -o "$BIN/filterd" ./cmd/filterd
go build -o "$BIN/filterplan" ./cmd/filterplan

"$BIN/filterd" -addr "127.0.0.1:$REP1_PORT" -workers 1 &
REP1_PID=$!
"$BIN/filterd" -addr "127.0.0.1:$REP2_PORT" -workers 1 &
REP2_PID=$!
# -replicas 1 pins a single owner per shard, so killing it exercises the
# local-failover path this smoke is about; the replicated R=2 ladder
# (co-owner serves, zero 5xx) is scripts/smoke_chaos.sh's story.
"$BIN/filterd" -addr "127.0.0.1:$ROUTER_PORT" -workers 1 -replicas 1 \
    -peers "http://127.0.0.1:$REP1_PORT,http://127.0.0.1:$REP2_PORT" &
ROUTER_PID=$!

wait_up() {
    i=0
    until curl -sf "http://127.0.0.1:$1/v1/stats" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "smoke-cluster: daemon did not come up on port $1" >&2
            exit 1
        fi
        sleep 0.2
    done
}
wait_up "$REP1_PORT"
wait_up "$REP2_PORT"
wait_up "$ROUTER_PORT"

REQUEST="{\"instance\": $(cat testdata/webquery8.json), \"model\": \"$MODEL\", \"objective\": \"period\"}"
HDRS="$BIN/headers.txt"

# Routed request: capture the value plus the routing headers, sending a
# client-chosen request ID that must echo back.
RID="smoke-cluster-rid-1"
ROUTED_VALUE=$(curl -sf -D "$HDRS" -H "X-Filterd-Request-Id: $RID" \
    -X POST "http://127.0.0.1:$ROUTER_PORT/v1/plan" -d "$REQUEST" \
    | sed -n 's/.*"value": "\([^"]*\)".*/\1/p' | head -1)
OWNER=$(tr -d '\r' <"$HDRS" | sed -n 's/^X-Filterd-Shard-Owner: //p' | head -1)
SERVED_BY=$(tr -d '\r' <"$HDRS" | sed -n 's/^X-Filterd-Served-By: //p' | head -1)
ECHOED_RID=$(tr -d '\r' <"$HDRS" | sed -n 's/^X-Filterd-Request-Id: //p' | head -1)
[ "$ECHOED_RID" = "$RID" ] || { echo "smoke-cluster: request id not echoed on routed response (got '$ECHOED_RID')" >&2; exit 1; }

# -canon makes the CLI solve the same canonical instance the service does.
CLI_VALUE=$("$BIN/filterplan" -canon -in testdata/webquery8.json -model "$MODEL" -objective period \
    | sed -n 's/^period = \([^ ]*\) .*/\1/p' | head -1)

echo "smoke-cluster: routed value=$ROUTED_VALUE CLI value=$CLI_VALUE owner=$OWNER served-by=$SERVED_BY"
[ -n "$ROUTED_VALUE" ] || { echo "smoke-cluster: empty routed value" >&2; exit 1; }
[ "$ROUTED_VALUE" = "$CLI_VALUE" ] || { echo "smoke-cluster: routed and CLI disagree" >&2; exit 1; }
[ "$SERVED_BY" = "$OWNER" ] || { echo "smoke-cluster: first answer not served by the owner" >&2; exit 1; }

# Kill the owning replica mid-run; the router must fail over to its local
# solve and still return the identical answer.
case "$OWNER" in
    *":$REP1_PORT") kill "$REP1_PID"; REP1_PID= ;;
    *":$REP2_PORT") kill "$REP2_PID"; REP2_PID= ;;
    *) echo "smoke-cluster: unexpected owner $OWNER" >&2; exit 1 ;;
esac

RID2="smoke-cluster-rid-2"
FAILOVER_VALUE=$(curl -sf -D "$HDRS" -H "X-Filterd-Request-Id: $RID2" \
    -X POST "http://127.0.0.1:$ROUTER_PORT/v1/plan" -d "$REQUEST" \
    | sed -n 's/.*"value": "\([^"]*\)".*/\1/p' | head -1)
SERVED_BY2=$(tr -d '\r' <"$HDRS" | sed -n 's/^X-Filterd-Served-By: //p' | head -1)
ECHOED_RID2=$(tr -d '\r' <"$HDRS" | sed -n 's/^X-Filterd-Request-Id: //p' | head -1)
[ "$ECHOED_RID2" = "$RID2" ] || { echo "smoke-cluster: request id not echoed on failover response (got '$ECHOED_RID2')" >&2; exit 1; }
FAILOVERS=$(curl -sf "http://127.0.0.1:$ROUTER_PORT/v1/stats" \
    | sed -n 's/.*"failovers": \([0-9]*\).*/\1/p' | head -1)

echo "smoke-cluster: failover value=$FAILOVER_VALUE served-by=$SERVED_BY2 failovers=$FAILOVERS"
[ "$FAILOVER_VALUE" = "$CLI_VALUE" ] || { echo "smoke-cluster: failover answer disagrees" >&2; exit 1; }
[ "$SERVED_BY2" = "local-failover" ] || { echo "smoke-cluster: request was not failed over locally" >&2; exit 1; }
[ -n "$FAILOVERS" ] && [ "$FAILOVERS" -ge 1 ] || { echo "smoke-cluster: router counted no failover" >&2; exit 1; }

# The dead peer's circuit breaker must open within K failed forwards:
# keep sending requests (each is a failed forward plus its retries) until
# the router's /metrics reports breaker state 1 (open) for that peer.
METRICS="$BIN/metrics.txt"
i=0
while :; do
    curl -sf "http://127.0.0.1:$ROUTER_PORT/metrics" >"$METRICS"
    if grep -q "filterd_router_breaker_state{peer=\"$OWNER\"} 1" "$METRICS"; then
        break
    fi
    i=$((i + 1))
    if [ "$i" -gt 10 ]; then
        echo "smoke-cluster: breaker for $OWNER never opened" >&2
        grep '^filterd_router_breaker' "$METRICS" >&2 || true
        exit 1
    fi
    curl -sf -X POST "http://127.0.0.1:$ROUTER_PORT/v1/plan" -d "$REQUEST" >/dev/null || true
    sleep 0.2
done
echo "smoke-cluster: breaker open for $OWNER after $i extra requests"

# Per-peer failover counter moved, and with the breaker open the answers
# stay bit-identical to the CLI (the breaker decides who solves, never
# what the answer is).
grep -q "filterd_router_failovers_total{peer=\"$OWNER\"}" "$METRICS" \
    || { echo "smoke-cluster: no per-peer failover counter on /metrics" >&2; exit 1; }
OPEN_VALUE=$(curl -sf -X POST "http://127.0.0.1:$ROUTER_PORT/v1/plan" -d "$REQUEST" \
    | sed -n 's/.*"value": "\([^"]*\)".*/\1/p' | head -1)
[ "$OPEN_VALUE" = "$CLI_VALUE" ] || { echo "smoke-cluster: answer under open breaker disagrees" >&2; exit 1; }

# The surviving replica serves its own Prometheus page.
case "$OWNER" in
    *":$REP1_PORT") ALIVE_PORT=$REP2_PORT ;;
    *) ALIVE_PORT=$REP1_PORT ;;
esac
curl -sf "http://127.0.0.1:$ALIVE_PORT/metrics" | grep -q '^filterd_queue_depth' \
    || { echo "smoke-cluster: replica /metrics missing filterd_queue_depth" >&2; exit 1; }

# /v1/explain must agree with the CLI's own branch-and-bound search
# report: plan mixed6 (no precedence, so the chain family applies) with
# -method bnb through the router, then compare the explain endpoint's
# nodes-expanded counter against filterplan's "search:" line. Workers 1
# on both sides — the service pins inner solves serial, which is what
# makes the counters a deterministic contract.
BNB_REQUEST="{\"instance\": $(cat testdata/mixed6.json), \"model\": \"$MODEL\", \"objective\": \"period\", \"method\": \"bnb\", \"family\": \"chain\"}"
BNB_HASH=$(curl -sf -X POST "http://127.0.0.1:$ROUTER_PORT/v1/plan" -d "$BNB_REQUEST" \
    | sed -n 's/.*"hash": "\([0-9a-f]*\)".*/\1/p' | head -1)
[ -n "$BNB_HASH" ] || { echo "smoke-cluster: bnb plan returned no hash" >&2; exit 1; }
EXPLAIN="$BIN/explain.json"
curl -sf "http://127.0.0.1:$ROUTER_PORT/v1/explain/$BNB_HASH" >"$EXPLAIN"
GOT_EXPANDED=$(sed -n 's/.*"expanded": \([0-9]*\).*/\1/p' "$EXPLAIN" | head -1)
WANT_EXPANDED=$("$BIN/filterplan" -canon -in testdata/mixed6.json -model "$MODEL" -objective period \
    -method bnb -family chain -workers 1 \
    | sed -n 's/^search: \([0-9]*\) nodes expanded.*/\1/p' | head -1)
echo "smoke-cluster: explain nodes-expanded=$GOT_EXPANDED CLI nodes-expanded=$WANT_EXPANDED"
[ -n "$GOT_EXPANDED" ] && [ -n "$WANT_EXPANDED" ] \
    || { echo "smoke-cluster: missing nodes-expanded counter" >&2; cat "$EXPLAIN" >&2; exit 1; }
[ "$GOT_EXPANDED" = "$WANT_EXPANDED" ] \
    || { echo "smoke-cluster: explain and CLI disagree on nodes expanded" >&2; cat "$EXPLAIN" >&2; exit 1; }
grep -q '"source": "' "$EXPLAIN" || { echo "smoke-cluster: explain has no source" >&2; exit 1; }
echo "smoke-cluster: OK"
