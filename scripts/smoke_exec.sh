#!/usr/bin/env sh
# End-to-end smoke of the data plane: boot filterd, run filterexec
# against it with an injected cost drift, and require the closed loop to
# complete — the executor's estimators must trigger at least one re-plan
# PATCH, and the hot-swapped schedule must be bit-identical to what the
# filterplan CLI computes on the drifted (post-PATCH) instance.
# No dependencies beyond a POSIX shell and curl (JSON is picked apart
# with sed so CI images without jq work too).
set -eu

PORT="${FILTEREXEC_PORT:-18331}"
BIN="$(mktemp -d)"
FILTERD_PID=
trap 'kill "$FILTERD_PID" 2>/dev/null || true; rm -rf "$BIN"' EXIT

go build -o "$BIN/filterd" ./cmd/filterd
go build -o "$BIN/filterexec" ./cmd/filterexec
go build -o "$BIN/filterplan" ./cmd/filterplan

"$BIN/filterd" -addr "127.0.0.1:$PORT" -workers 1 &
FILTERD_PID=$!

# Wait for the daemon to accept requests.
i=0
until curl -sf "http://127.0.0.1:$PORT/v1/stats" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "smoke-exec: daemon did not come up on port $PORT" >&2
        exit 1
    fi
    sleep 0.2
done

# Run the executor with an 8x cost drift on C1 (the stream head, so it
# sees every tuple and clears the min-samples gate): the stream behaves
# per the true cost, the estimators converge, the controller PATCHes
# the instance over HTTP and hot-swaps to the re-planned schedule. The
# wide window/threshold keeps Bernoulli selectivity noise below the
# trigger, so the injected drift is the only re-plan episode.
"$BIN/filterexec" -in testdata/webquery8.json -url "http://127.0.0.1:$PORT" \
    -model overlap -objective period -tuples 4096 -workers 4 \
    -window 512 -min-samples 256 -threshold 1/4 -drift-cost 'C1=8' \
    -json -dump-instance "$BIN/drifted.json" -dump-schedule "$BIN/exec_sched.json" \
    >"$BIN/report.json"

PATCHES=$(sed -n 's/^  "Patches": \([0-9]*\),*$/\1/p' "$BIN/report.json" | head -1)
SWAPS=$(sed -n 's/^  "Swaps": \([0-9]*\),*$/\1/p' "$BIN/report.json" | head -1)

# The CLI must reproduce the executor's final schedule bit for bit from
# the dumped post-PATCH instance (-canon solves the same canonical form
# the service planned).
"$BIN/filterplan" -canon -in "$BIN/drifted.json" -model overlap -objective period \
    -schedule-out "$BIN/cli_sched.json" >/dev/null

echo "smoke-exec: patches=$PATCHES swaps=$SWAPS"
[ -n "$PATCHES" ] || { echo "smoke-exec: no patch count in report" >&2; exit 1; }
[ "$PATCHES" -ge 1 ] || { echo "smoke-exec: no re-plan occurred" >&2; exit 1; }
[ "$SWAPS" -ge 1 ] || { echo "smoke-exec: no schedule hot swap occurred" >&2; exit 1; }
cmp -s "$BIN/exec_sched.json" "$BIN/cli_sched.json" || {
    echo "smoke-exec: executor and CLI schedules differ on the drifted instance" >&2
    exit 1
}
echo "smoke-exec: OK"
