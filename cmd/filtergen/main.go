// Command filtergen emits random filtering-workflow instance files (JSON)
// for use with filterplan and the library.
//
// Usage:
//
//	filtergen -n 12 [-seed 42] [-profile filtering|mixed|expanding|neutral]
//	          [-prec 0.2] [-o instance.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/gen"
)

func main() {
	var (
		n       = flag.Int("n", 10, "number of services")
		seed    = flag.Int64("seed", 1, "random seed")
		profile = flag.String("profile", "filtering", "selectivity profile: filtering, mixed, expanding, neutral")
		prec    = flag.Float64("prec", 0, "precedence-constraint density in [0,1]")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var p gen.Profile
	switch strings.ToLower(*profile) {
	case "filtering":
		p = gen.Filtering
	case "mixed":
		p = gen.Mixed
	case "expanding":
		p = gen.Expanding
	case "neutral":
		p = gen.Neutral
	default:
		fmt.Fprintf(os.Stderr, "filtergen: unknown profile %q\n", *profile)
		os.Exit(1)
	}
	if *n < 1 {
		fmt.Fprintln(os.Stderr, "filtergen: need n >= 1")
		os.Exit(1)
	}
	rng := gen.NewRand(*seed)
	app := gen.AppWithPrecedence(rng, *n, p, *prec)
	data, err := app.MarshalJSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, "filtergen:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "filtergen:", err)
		os.Exit(1)
	}
}
