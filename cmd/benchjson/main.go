// Command benchjson turns `go test -bench` output into the committed
// benchmark-trajectory artifact BENCH_plan.json: it parses the benchmark
// lines from stdin and APPENDS one run record — environment (Go version,
// OS/arch, CPU count) plus every benchmark's ns/op — to the JSON file, so
// successive PRs accumulate a machine-readable speedup history instead of
// overwriting each other's numbers.
//
// Usage (the Makefile's bench-json target):
//
//	go test -run '^$' -bench 'Serial$|Parallel$' -benchtime 1x . \
//	    | go run ./cmd/benchjson -out BENCH_plan.json -note "PR N"
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

type benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

type run struct {
	Date      string `json:"date"`
	GoVersion string `json:"go"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// CPUs is runtime.NumCPU() and GOMAXPROCS the effective parallelism
	// bound at record time. Together they make the 1-CPU-container caveat
	// machine-readable: a run with cpus == 1 (or gomaxprocs == 1) cannot
	// show a parallel-vs-serial speedup, whatever the code does.
	CPUs       int         `json:"cpus"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Note       string      `json:"note,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

type trajectory struct {
	// Comment documents the file for readers stumbling on the artifact.
	Comment string `json:"_comment"`
	Runs    []run  `json:"runs"`
}

const comment = "Benchmark trajectory: one run record per `make bench-json` invocation (parallel-vs-serial pairs of the plan-search layer AND the orchestration-level order search — OrchestratePeriod/OrchestrateLatency — plus the n=12 chain certification; ratios measure the worker-pool speedup on that run's host). Append-only — see cmd/benchjson."

func main() {
	var (
		out  = flag.String("out", "BENCH_plan.json", "trajectory file to append the run to")
		note = flag.String("note", "", "free-form run annotation (e.g. the PR number)")
	)
	flag.Parse()

	benchmarks, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin (pipe `go test -bench` output in)"))
	}

	traj := trajectory{Comment: comment}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &traj); err != nil {
			fatal(fmt.Errorf("%s exists but is not a trajectory file: %w", *out, err))
		}
		traj.Comment = comment
	} else if !os.IsNotExist(err) {
		fatal(err)
	}

	traj.Runs = append(traj.Runs, run{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note:       *note,
		Benchmarks: benchmarks,
	})

	data, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: appended %d benchmarks to %s (%d runs total)\n",
		len(benchmarks), *out, len(traj.Runs))
}

// parseBench extracts benchmark results from `go test -bench` text output.
// A benchmark line looks like
//
//	BenchmarkExactForestSerial-4   	       1	  12345678 ns/op
//
// (the -N suffix is GOMAXPROCS and is kept as part of the name; extra
// -benchmem columns are ignored).
func parseBench(r io.Reader) ([]benchmark, error) {
	var out []benchmark
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		nsIdx := -1
		for i, f := range fields {
			if f == "ns/op" {
				nsIdx = i
				break
			}
		}
		// The value column must exist separately from the iterations
		// column: [name, iterations, value, "ns/op", ...].
		if nsIdx < 3 {
			continue
		}
		iters, err1 := strconv.ParseInt(fields[1], 10, 64)
		ns, err2 := strconv.ParseFloat(fields[nsIdx-1], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		out = append(out, benchmark{
			Name:       strings.TrimPrefix(fields[0], "Benchmark"),
			Iterations: iters,
			NsPerOp:    ns,
		})
	}
	return out, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
