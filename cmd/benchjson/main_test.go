package main

import (
	"encoding/json"
	"runtime"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	sample := `goos: linux
goarch: amd64
pkg: repro
cpu: Some CPU @ 2.00GHz
BenchmarkExactForestSerial     	       1	  91486627 ns/op
BenchmarkExactForestParallel-4 	       2	  45743313 ns/op	     128 B/op	       3 allocs/op
PASS
ok  	repro	1.374s
`
	got, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(got))
	}
	if got[0].Name != "ExactForestSerial" || got[0].Iterations != 1 || got[0].NsPerOp != 91486627 {
		t.Errorf("first = %+v", got[0])
	}
	if got[1].Name != "ExactForestParallel-4" || got[1].NsPerOp != 45743313 {
		t.Errorf("second = %+v", got[1])
	}
}

// TestRunRecordsParallelismEnvironment: every trajectory record carries
// the CPU count AND the GOMAXPROCS bound, so the 1-CPU-container caveat
// (ROADMAP) is machine-readable from BENCH_plan.json alone.
func TestRunRecordsParallelismEnvironment(t *testing.T) {
	data, err := json.Marshal(run{
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"cpus", "gomaxprocs"} {
		v, ok := doc[field].(float64)
		if !ok || v < 1 {
			t.Errorf("field %q = %v, want a positive count", field, doc[field])
		}
	}
}

func TestParseBenchIgnoresNoise(t *testing.T) {
	got, err := parseBench(strings.NewReader("PASS\nok repro 0.1s\nBenchmarkBroken x y\n"))
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}
