// Command filterd is the long-running planning service: a daemon that
// plans filtering-workflow instances over HTTP, amortizing the NP-hard
// plan search across repeated and slowly-drifting instances.
//
// Every instance is canonicalized (service permutation, rational
// normalization, precedence closure — internal/canon) so equivalent
// request bodies land on the same content hash; solved plans live in a
// bounded LRU with singleflight deduplication (internal/plancache); drift
// updates re-plan warm-started from the cached solution and push
// server-sent events to subscribers (internal/service); and every request
// runs under its own context, so a disconnected client aborts its solve.
//
// With -data-dir the plan cache is persistent (internal/store): every
// solve is written through to disk and warm-loaded on restart, so a
// restarted daemon answers previously solved requests bit-identical to
// before, without re-solving. With -peers the daemon is a cluster router
// (internal/cluster): requests are forwarded to the replica owning the
// canonical hash's shard (-shard-bits prefix bits), with health checks
// and local-solve failover.
//
// Usage:
//
//	filterd [-addr :8080] [-workers N] [-cache N] [-queue N] [-max-services N]
//	        [-data-dir DIR] [-peers URL,URL,...] [-shard-bits B]
//
// API (JSON; instances use the filterplan -in file format, schedules the
// oplist codec):
//
//	POST  /v1/plan             {"instance": {...}, "model": "inorder", "objective": "period", ...}
//	POST  /v1/batch            {"requests": [{...}, ...]}
//	PATCH /v1/instance/{hash}  {"updates": [{"service": "C3", "cost": "7/2"}], "model": ...}
//	GET   /v1/subscribe/{hash} server-sent events: one "replan" event per objective change
//	GET   /v1/stats            JSON counters (compat)
//	GET   /metrics             Prometheus text format: request latency, solver wall
//	                           time, cache/memo hit rates, queue depth and shed
//	                           counts — plus, in router mode, per-peer forward,
//	                           failover and circuit-breaker state
//
// Example (single replica with persistence):
//
//	filterd -addr 127.0.0.1:8080 -data-dir /var/lib/filterd &
//	curl -s -X POST 127.0.0.1:8080/v1/plan \
//	     -d "{\"instance\": $(cat testdata/webquery8.json), \"model\": \"inorder\"}"
//
// Example (2-replica cluster): see scripts/smoke_cluster.sh, which boots
// two replicas plus a router and exercises routing and failover.
//
// See examples/service for a complete end-to-end program.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "solver pool size (0 = all CPUs; inner solves are serial — one pool, never nested)")
		cacheSize   = flag.Int("cache", 256, "plan cache capacity (completed entries)")
		queueSize   = flag.Int("queue", 64, "intake queue buffer")
		maxPending  = flag.Int("max-pending", 0, "load-shedding watermark: pending solves beyond it get 429 (0 = queue + 2*workers)")
		maxServices = flag.Int("max-services", 64, "largest accepted instance")
		dataDir     = flag.String("data-dir", "", "persistent plan store directory (empty: in-memory only)")
		peers       = flag.String("peers", "", "comma-separated replica base URLs; when set, run as the cluster router")
		shardBits   = flag.Int("shard-bits", 8, "canonical-hash prefix bits for cluster sharding (2^B shards)")
	)
	flag.Parse()

	var st *store.Store
	if *dataDir != "" {
		var err error
		st, err = store.Open(*dataDir)
		if err != nil {
			fatal(err)
		}
	}

	// One registry for the whole process: the service's filterd_* families
	// and (in router mode) the cluster's filterd_router_* families share
	// the same GET /metrics page.
	reg := metrics.New()
	srv := service.New(service.Config{
		Workers:     *workers,
		CacheSize:   *cacheSize,
		QueueSize:   *queueSize,
		MaxPending:  *maxPending,
		MaxServices: *maxServices,
		Store:       st,
		Metrics:     reg,
	})
	if st != nil {
		ls := st.Stats()
		log.Printf("filterd: warm-loaded %d plans from %s (%d skipped)", ls.Loaded, *dataDir, ls.Skipped)
	}

	handler := http.Handler(service.Handler(srv))
	var router *cluster.Router
	if *peers != "" {
		peerList := strings.Split(*peers, ",")
		for i := range peerList {
			peerList[i] = strings.TrimSpace(peerList[i])
		}
		var err error
		router, err = cluster.New(cluster.Config{
			Peers:     peerList,
			ShardBits: *shardBits,
			Local:     srv,
			Metrics:   reg,
		})
		if err != nil {
			fatal(err)
		}
		handler = router
		log.Printf("filterd: routing %d shards across %d peers (local failover attached)",
			1<<*shardBits, len(peerList))
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	// Subscription streams end when the graceful drain starts; otherwise
	// one connected subscriber would hold Shutdown to its full deadline.
	httpSrv.RegisterOnShutdown(srv.EndSubscriptions)

	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	log.Printf("filterd: listening on %s (workers=%d cache=%d)", *addr, srv.Stats().Workers, *cacheSize)
	select {
	case err := <-done:
		// ListenAndServe only returns on failure (e.g. port in use).
		shutdown(srv, router, st)
		fatal(err)
	case s := <-sig:
		log.Printf("filterd: %v — shutting down", s)
	}

	// Graceful shutdown: stop accepting, drain in-flight requests under a
	// deadline, then stop the pool and flush the store.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("filterd: shutdown: %v", err)
	}
	shutdown(srv, router, st)
	stats := srv.Stats()
	log.Printf("filterd: served %d plan requests (%d hits, %d coalesced, %d solves)",
		stats.PlanRequests, stats.Cache.Hits, stats.Cache.Coalesced, stats.Solves)
}

// shutdown releases the daemon's moving parts in dependency order: router
// health loop, solver pool, then the store flush (every entry is already
// on disk write-through; the flush forces directory metadata out too).
func shutdown(srv *service.Server, router *cluster.Router, st *store.Store) {
	if router != nil {
		router.Close()
	}
	srv.Close()
	if st != nil {
		if err := st.Flush(); err != nil {
			log.Printf("filterd: store flush: %v", err)
		} else {
			ss := st.Stats()
			log.Printf("filterd: store flushed (%d writes this run, %d write errors)", ss.Writes, ss.WriteErrors)
		}
	}
}

func fatal(err error) {
	if errors.Is(err, http.ErrServerClosed) {
		return
	}
	fmt.Fprintln(os.Stderr, "filterd:", err)
	os.Exit(1)
}
