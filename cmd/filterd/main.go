// Command filterd is the long-running planning service: a daemon that
// plans filtering-workflow instances over HTTP, amortizing the NP-hard
// plan search across repeated and slowly-drifting instances.
//
// Every instance is canonicalized (service permutation, rational
// normalization, precedence closure — internal/canon) so equivalent
// request bodies land on the same content hash; solved plans live in a
// bounded LRU with singleflight deduplication (internal/plancache); and
// drift updates re-plan warm-started from the cached solution
// (internal/service).
//
// Usage:
//
//	filterd [-addr :8080] [-workers N] [-cache N] [-queue N] [-max-services N]
//
// API (JSON; instances use the filterplan -in file format, schedules the
// oplist codec):
//
//	POST  /v1/plan            {"instance": {...}, "model": "inorder", "objective": "period", ...}
//	POST  /v1/batch           {"requests": [{...}, ...]}
//	PATCH /v1/instance/{hash} {"updates": [{"service": "C3", "cost": "7/2"}], "model": ...}
//	GET   /v1/stats
//
// Example:
//
//	filterd -addr 127.0.0.1:8080 &
//	curl -s -X POST 127.0.0.1:8080/v1/plan \
//	     -d "{\"instance\": $(cat testdata/webquery8.json), \"model\": \"inorder\"}"
//
// See examples/service for a complete end-to-end program.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "solver pool size (0 = all CPUs; inner solves are serial — one pool, never nested)")
		cacheSize   = flag.Int("cache", 256, "plan cache capacity (completed entries)")
		queueSize   = flag.Int("queue", 64, "intake queue buffer")
		maxServices = flag.Int("max-services", 64, "largest accepted instance")
	)
	flag.Parse()

	srv := service.New(service.Config{
		Workers:     *workers,
		CacheSize:   *cacheSize,
		QueueSize:   *queueSize,
		MaxServices: *maxServices,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           service.Handler(srv),
		ReadHeaderTimeout: 10 * time.Second,
	}

	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	log.Printf("filterd: listening on %s (workers=%d cache=%d)", *addr, srv.Stats().Workers, *cacheSize)
	select {
	case err := <-done:
		// ListenAndServe only returns on failure (e.g. port in use).
		srv.Close()
		fatal(err)
	case s := <-sig:
		log.Printf("filterd: %v — shutting down", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("filterd: shutdown: %v", err)
	}
	srv.Close()
	st := srv.Stats()
	log.Printf("filterd: served %d plan requests (%d hits, %d coalesced, %d solves)",
		st.PlanRequests, st.Cache.Hits, st.Cache.Coalesced, st.Solves)
}

func fatal(err error) {
	if errors.Is(err, http.ErrServerClosed) {
		return
	}
	fmt.Fprintln(os.Stderr, "filterd:", err)
	os.Exit(1)
}
