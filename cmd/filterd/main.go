// Command filterd is the long-running planning service: a daemon that
// plans filtering-workflow instances over HTTP, amortizing the NP-hard
// plan search across repeated and slowly-drifting instances.
//
// Every instance is canonicalized (service permutation, rational
// normalization, precedence closure — internal/canon) so equivalent
// request bodies land on the same content hash; solved plans live in a
// bounded LRU with singleflight deduplication (internal/plancache); drift
// updates re-plan warm-started from the cached solution and push
// server-sent events to subscribers (internal/service); and every request
// runs under its own context, so a disconnected client aborts its solve.
//
// With -data-dir the plan cache is persistent (internal/store): every
// solve is written through to disk and warm-loaded on restart, so a
// restarted daemon answers previously solved requests bit-identical to
// before, without re-solving. With -peers the daemon is a cluster router
// (internal/cluster): requests are forwarded to the replicas owning the
// canonical hash's shard (-shard-bits prefix bits, -replicas owners per
// shard), with health checks, read failover across the owners, write
// (PATCH) fan-out to all of them, and local-solve failover as the last
// resort. With -sync-peers a replica gossips its drift registry and plan
// entries with its co-owners (anti-entropy over POST /v1/sync), so
// PATCHed state converges on every owner and a restarted replica streams
// back what it missed. -fault-seed arms the deterministic fault injector
// (internal/faults) for chaos testing.
//
// Observability (DESIGN.md §7): every request carries an
// X-Filterd-Request-Id (inbound honored, otherwise generated) echoed on
// every response and threaded through log lines, the span ring at
// GET /debug/requests, and the plan-provenance endpoint
// GET /v1/explain/{hash}. Logs are structured (log/slog); -log-format
// json emits one JSON object per line for collectors. -debug-addr
// starts a second, private HTTP server with net/http/pprof and the span
// ring, so profiling never has to share the public listener.
//
// Usage:
//
//	filterd [-addr :8080] [-workers N] [-cache N] [-queue N] [-max-services N]
//	        [-data-dir DIR] [-peers URL,URL,...] [-shard-bits B] [-replicas R]
//	        [-sync-peers URL,URL,...] [-gossip-interval D]
//	        [-fault-seed S] [-fault-drop N] [-fault-error N] [-fault-truncate N] [-fault-delay N]
//	        [-log-level info] [-log-format text] [-trace-requests N]
//	        [-debug-addr ADDR] [-version]
//
// API (JSON; instances use the filterplan -in file format, schedules the
// oplist codec):
//
//	POST  /v1/plan             {"instance": {...}, "model": "inorder", "objective": "period", ...}
//	POST  /v1/batch            {"requests": [{...}, ...]}
//	PATCH /v1/instance/{hash}  {"updates": [{"service": "C3", "cost": "7/2"}], "model": ...}
//	GET   /v1/subscribe/{hash} server-sent events: one "replan" event per objective change
//	GET   /v1/explain/{hash}   provenance of the last serve: method, family, source
//	                           (cache|store|solve|failover), search-effort counters, timings
//	GET   /v1/healthz          liveness: status, version, VCS revision
//	GET   /v1/stats            JSON counters (compat)
//	GET   /metrics             Prometheus text format: request latency, per-phase and solver
//	                           wall time, search-effort totals, cache/memo hit rates, queue
//	                           depth and shed counts — plus, in router mode, per-peer
//	                           forward, failover and circuit-breaker state
//	GET   /debug/requests      the most recent request spans (bounded ring; empty when
//	                           -trace-requests is 0)
//
// Example (single replica with persistence):
//
//	filterd -addr 127.0.0.1:8080 -data-dir /var/lib/filterd &
//	curl -s -X POST 127.0.0.1:8080/v1/plan \
//	     -d "{\"instance\": $(cat testdata/webquery8.json), \"model\": \"inorder\"}"
//
// Example (2-replica cluster): see scripts/smoke_cluster.sh, which boots
// two replicas plus a router and exercises routing, failover, and the
// request-ID round-trip.
//
// See examples/service for a complete end-to-end program, including the
// log line → /debug/requests → /v1/explain correlation walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "solver pool size (0 = all CPUs; inner solves are serial — one pool, never nested)")
		cacheSize   = flag.Int("cache", 256, "plan cache capacity (completed entries)")
		queueSize   = flag.Int("queue", 64, "intake queue buffer")
		maxPending  = flag.Int("max-pending", 0, "load-shedding watermark: pending solves beyond it get 429 (0 = queue + 2*workers)")
		maxServices = flag.Int("max-services", 64, "largest accepted instance")
		dataDir     = flag.String("data-dir", "", "persistent plan store directory (empty: in-memory only)")
		peers       = flag.String("peers", "", "comma-separated replica base URLs; when set, run as the cluster router")
		shardBits   = flag.Int("shard-bits", 8, "canonical-hash prefix bits for cluster sharding (2^B shards)")
		replicas    = flag.Int("replicas", 2, "owners per shard R (router mode): reads fail over across them, writes fan to all")
		syncPeers   = flag.String("sync-peers", "", "comma-separated co-replica base URLs to anti-entropy sync with (replica mode)")
		gossipEvery = flag.Duration("gossip-interval", 2*time.Second, "anti-entropy period for -sync-peers")
		faultSeed   = flag.Int64("fault-seed", 0, "deterministic fault-injection seed (chaos testing; 0 disables)")
		faultDrop   = flag.Int("fault-drop", 0, "drop 1-in-N forwarded requests (with -fault-seed)")
		faultErr    = flag.Int("fault-error", 0, "turn 1-in-N forwarded requests into 502s (with -fault-seed)")
		faultTrunc  = flag.Int("fault-truncate", 0, "truncate 1-in-N forwarded response bodies (with -fault-seed)")
		faultDelay  = flag.Int("fault-delay", 0, "delay 1-in-N forwarded requests (with -fault-seed)")
		logLevel    = flag.String("log-level", "info", "log threshold: debug, info, warn, or error")
		logFormat   = flag.String("log-format", "text", "log line format: text or json")
		traceReqs   = flag.Int("trace-requests", 256, "request spans kept for GET /debug/requests (0 disables tracing)")
		debugAddr   = flag.String("debug-addr", "", "private listen address for net/http/pprof and /debug/requests (empty: disabled)")
		showVersion = flag.Bool("version", false, "print version and VCS revision, then exit")
	)
	flag.Parse()

	version, revision := obs.BuildInfo()
	if *showVersion {
		fmt.Printf("filterd %s (%s)\n", version, revision)
		return
	}

	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		fatal(err)
	}
	// The default logger feeds the few slog.Warn call sites deep in the
	// service's write paths (they have no Server receiver to reach s.logger).
	slog.SetDefault(logger)

	var st *store.Store
	if *dataDir != "" {
		st, err = store.Open(*dataDir)
		if err != nil {
			fatal(err)
		}
	}

	// One span ring and one registry for the whole process: in router mode
	// the router's middleware owns the spans (the embedded service
	// annotates them), and the service's filterd_* families share the
	// GET /metrics page with the cluster's filterd_router_* families.
	tracer := obs.NewTracer(*traceReqs)
	reg := metrics.New()
	srv := service.New(service.Config{
		Workers:     *workers,
		CacheSize:   *cacheSize,
		QueueSize:   *queueSize,
		MaxPending:  *maxPending,
		MaxServices: *maxServices,
		Store:       st,
		Metrics:     reg,
		Tracer:      tracer,
		Logger:      logger,
	})
	if st != nil {
		ls := st.Stats()
		logger.Info("warm-loaded persisted plans", "dir", *dataDir, "loaded", ls.Loaded, "skipped", ls.Skipped)
	}

	// Deterministic fault injection (chaos testing): with -fault-seed the
	// router's forwarding client — and the store's write path — run
	// through the seeded injector, so scripts/smoke_chaos.sh exercises
	// replica loss and wire noise on a reproducible schedule.
	var injector *faults.Injector
	if *faultSeed != 0 {
		injector = faults.New(faults.Config{
			Seed:     *faultSeed,
			Drop:     *faultDrop,
			Err:      *faultErr,
			Truncate: *faultTrunc,
			Delay:    *faultDelay,
		})
		if st != nil {
			st.SetHooks(injector.StoreHooks())
		}
		logger.Warn("fault injection armed", "schedule", injector.String())
	}

	handler := http.Handler(service.Handler(srv))
	var router *cluster.Router
	if *peers != "" {
		peerList := strings.Split(*peers, ",")
		for i := range peerList {
			peerList[i] = strings.TrimSpace(peerList[i])
		}
		var client *http.Client
		if injector != nil {
			client = &http.Client{Transport: injector.RoundTripper(nil)}
		}
		router, err = cluster.New(cluster.Config{
			Peers:     peerList,
			ShardBits: *shardBits,
			Replicas:  *replicas,
			Local:     srv,
			Metrics:   reg,
			Tracer:    tracer,
			Logger:    logger,
			Client:    client,
		})
		if err != nil {
			fatal(err)
		}
		handler = router
		logger.Info("routing shards across peers (local failover attached)",
			"shards", 1<<*shardBits, "replicas", *replicas, "peers", len(peerList))
	}

	// Replica-side anti-entropy: with -sync-peers this replica gossips
	// its drift registry and plan-store entries with its co-owners, so
	// PATCHed state converges on every owner and a restarted replica
	// streams back what it missed instead of cold-solving it.
	var gossip *cluster.Gossip
	if *syncPeers != "" {
		peerList := strings.Split(*syncPeers, ",")
		for i := range peerList {
			peerList[i] = strings.TrimSpace(peerList[i])
		}
		var client *http.Client
		if injector != nil {
			client = &http.Client{Transport: injector.RoundTripper(nil)}
		}
		gossip, err = cluster.NewGossip(cluster.GossipConfig{
			Peers:    peerList,
			Local:    srv,
			Interval: *gossipEvery,
			Client:   client,
			Metrics:  reg,
			Logger:   logger,
		})
		if err != nil {
			fatal(err)
		}
		gossip.Start()
		logger.Info("anti-entropy sync started", "peers", len(peerList), "interval", gossipEvery.String())
	}

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = newDebugServer(*debugAddr, tracer)
		go func() {
			if derr := debugSrv.ListenAndServe(); derr != nil && !errors.Is(derr, http.ErrServerClosed) {
				logger.Error("debug server failed", "addr", *debugAddr, "err", derr)
			}
		}()
		logger.Info("debug server listening", "addr", *debugAddr)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	// Subscription streams end when the graceful drain starts; otherwise
	// one connected subscriber would hold Shutdown to its full deadline.
	httpSrv.RegisterOnShutdown(srv.EndSubscriptions)

	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	logger.Info("listening", "addr", *addr, "workers", srv.Stats().Workers, "cache", *cacheSize,
		"version", version, "revision", revision)
	select {
	case err := <-done:
		// ListenAndServe only returns on failure (e.g. port in use).
		shutdown(logger, srv, router, gossip, st, debugSrv)
		fatal(err)
	case s := <-sig:
		logger.Info("shutting down on signal", "signal", s.String())
	}

	// Graceful shutdown: stop accepting, drain in-flight requests under a
	// deadline, then stop the pool and flush the store.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Warn("shutdown drain incomplete", "err", err)
	}
	shutdown(logger, srv, router, gossip, st, debugSrv)
	stats := srv.Stats()
	logger.Info("served", "plan_requests", stats.PlanRequests, "cache_hits", stats.Cache.Hits,
		"coalesced", stats.Cache.Coalesced, "solves", stats.Solves)
}

// newLogger builds the process logger from the -log-level and -log-format
// flags.
func newLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

// newDebugServer builds the private observability listener: pprof (the
// expensive, potentially sensitive profiling surface stays off the public
// address) plus the same span ring the public /debug/requests serves.
func newDebugServer(addr string, tracer *obs.Tracer) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/requests", tracer.Handler())
	return &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
}

// shutdown releases the daemon's moving parts in dependency order: debug
// listener, router health loop, gossip loop, solver pool, then the store
// flush (every entry is already on disk write-through; the flush forces
// directory metadata out too).
func shutdown(logger *slog.Logger, srv *service.Server, router *cluster.Router, gossip *cluster.Gossip, st *store.Store, debugSrv *http.Server) {
	if debugSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		debugSrv.Shutdown(ctx)
		cancel()
	}
	if router != nil {
		router.Close()
	}
	if gossip != nil {
		gossip.Close()
	}
	srv.Close()
	if st != nil {
		if err := st.Flush(); err != nil {
			logger.Warn("store flush failed", "err", err)
		} else {
			ss := st.Stats()
			logger.Info("store flushed", "writes", ss.Writes, "write_errors", ss.WriteErrors)
		}
	}
}

func fatal(err error) {
	if errors.Is(err, http.ErrServerClosed) {
		return
	}
	fmt.Fprintln(os.Stderr, "filterd:", err)
	os.Exit(1)
}
