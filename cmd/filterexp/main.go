// Command filterexp regenerates every experiment of the reproduction: the
// paper's worked example, the three counter-examples, the polynomial
// special cases, the structural theorem, the NP-hardness gadgets, the
// simulation studies, and the branch-and-bound pruning study (E15: nodes
// expanded vs full enumeration per structural family). The tables it
// prints are the source of EXPERIMENTS.md.
//
// Usage:
//
//	filterexp [-exp E1,E4] [-md] [-budget N] [-workers N]
//
// -exp selects a comma-separated subset of experiment IDs (default: all);
// -md emits Markdown tables instead of aligned text; -budget scales the
// random sweeps (1 = smoke run, 2 = the configuration recorded in
// EXPERIMENTS.md); -workers bounds the worker pool the experiments run on
// (0 = all CPUs, 1 = serial — the reports are identical either way).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		expFilter = flag.String("exp", "", "comma-separated experiment IDs to run (default all)")
		markdown  = flag.Bool("md", false, "emit Markdown tables")
		budget    = flag.Int("budget", 1, "sweep size multiplier (1 = smoke, 2 = full)")
		workers   = flag.Int("workers", 0, "worker goroutines (0 = all CPUs, 1 = serial)")
	)
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(*expFilter, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}

	failures := 0
	for _, r := range experiments.AllWorkers(*budget, *workers) {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		status := "reproduced"
		if !r.OK {
			status = "FAILED"
			failures++
		}
		if *markdown {
			fmt.Printf("### %s — %s (%s)\n\n%s\n", r.ID, r.Title, status, r.Table.Markdown())
			for _, n := range r.Notes {
				fmt.Printf("> %s\n", n)
			}
			fmt.Println()
		} else {
			fmt.Printf("=== %s — %s [%s]\n%s", r.ID, r.Title, status, r.Table.String())
			for _, n := range r.Notes {
				fmt.Printf("  note: %s\n", n)
			}
			fmt.Println()
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "filterexp: %d experiment(s) failed to reproduce\n", failures)
		os.Exit(1)
	}
}
