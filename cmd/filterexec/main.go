// Command filterexec is the data plane: it plans an instance, then
// actually runs the plan — pushing a deterministic synthetic tuple
// stream through the planned execution graph, estimating each service's
// empirical selectivity and per-tuple cost online, and driving the
// re-plan loop when the measurements depart the declared instance
// (internal/exec).
//
// Two control-plane modes: with -url the executor speaks to a running
// filterd (or cluster router) over HTTP — plan via POST /v1/plan, drift
// via PATCH /v1/instance/{hash}, external re-plans via the SSE subscribe
// stream with Last-Event-ID resume; without -url an in-process planning
// service is embedded, so the full closed loop runs in one process.
//
// Drift is injected with -drift / -drift-cost: the declared instance is
// planned as-is, but the stream behaves per the overridden truth, so the
// executor's estimators converge on the true values and the controller
// PATCHes the instance — exercising plan → execute → observe → re-plan
// end to end.
//
//	filterexec -in testdata/webquery8.json -tuples 8192 -drift 'C3=1/2'
//	filterexec -in inst.json -url http://127.0.0.1:8080 -rate 5000 -json
//
// Determinism: fixed -exec-seed (and fixed instance/flags) reproduces
// bit-identical verdicts, estimator values, and drift-trigger sequences
// across runs and -workers settings.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"repro/internal/cliopt"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/rat"
	"repro/internal/service"
	"repro/internal/workflow"
)

func main() {
	var (
		in        = flag.String("in", "", "instance file (workflow.App JSON; required)")
		url       = flag.String("url", "", "filterd base URL (empty: embed an in-process planning service)")
		model     = flag.String("model", "", "cost model: overlap, inorder, outorder (default service/CLI default)")
		obj       = flag.String("objective", "", "objective: period or latency")
		method    = flag.String("method", "", "search method (e.g. auto, bnb, greedy)")
		family    = flag.String("family", "", "structural family (e.g. auto, chain, dag)")
		seed      = flag.Int64("seed", 0, "solver seed (randomized searches)")
		execSeed  = flag.Uint64("exec-seed", 1, "verdict seed of the synthetic stream")
		tuples    = flag.Uint64("tuples", 4096, "tuples to stream")
		rate      = flag.Float64("rate", 0, "pace the stream to this many tuples/second of wall time (0 = unpaced)")
		workers   = flag.Int("workers", 1, "execution mode: 1 = serial, >1 = pipelined stage network")
		window    = flag.Int("window", exec.DefaultWindow, "tuples per round (drift control and hot swaps happen at round boundaries)")
		minSamp   = flag.Uint64("min-samples", exec.DefaultMinSamples, "tuples a service must see before its estimates can trigger a re-plan")
		thresh    = flag.String("threshold", "1/8", "relative drift threshold: re-plan when |emp-decl| > threshold*decl")
		drift     = flag.String("drift", "", "true selectivities, e.g. 'C3=1/2,C5=9/10' (stream behavior; declared plan unchanged)")
		driftC    = flag.String("drift-cost", "", "true per-tuple costs, e.g. 'C2=9/2'")
		jsonOut   = flag.Bool("json", false, "print the run report as JSON")
		dumpInst  = flag.String("dump-instance", "", "write the final declared instance (post-PATCH) to this file")
		dumpSched = flag.String("dump-schedule", "", "write the final (hot-swapped) schedule to this file — comparable bit for bit with filterplan -canon -schedule-out on the dumped instance")
	)
	flag.Parse()

	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	var app workflow.App
	if err := json.Unmarshal(data, &app); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *in, err))
	}

	threshold, err := rat.Parse(*thresh)
	if err != nil {
		fatal(fmt.Errorf("parsing -threshold: %w", err))
	}
	truth, err := parseTruth(*drift, *driftC)
	if err != nil {
		fatal(err)
	}

	planner, cleanup, err := buildPlanner(*url, *model, *obj, *method, *family, *seed)
	if err != nil {
		fatal(err)
	}
	defer cleanup()

	reg := metrics.New()
	ex, err := exec.New(exec.Config{
		App:        &app,
		Planner:    planner,
		Seed:       *execSeed,
		Rate:       *rate,
		Window:     *window,
		MinSamples: *minSamp,
		Threshold:  threshold,
		Truth:      truth,
		Workers:    *workers,
		Buffer:     exec.DefaultBuffer,
		Metrics:    reg,
		RequestID:  obs.NewID(),
	})
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	report, err := ex.Run(ctx, *tuples)
	if err != nil {
		fatal(err)
	}

	if *dumpInst != "" {
		doc, err := json.MarshalIndent(report.App, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*dumpInst, append(doc, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	if *dumpSched != "" {
		if err := os.WriteFile(*dumpSched, append(append([]byte(nil), report.Schedule...), '\n'), 0o644); err != nil {
			fatal(err)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fatal(err)
		}
		return
	}
	printReport(report)
}

// buildPlanner wires either the HTTP client (with -url) or an embedded
// in-process planning service.
func buildPlanner(url, model, objective, method, family string, seed int64) (exec.Planner, func(), error) {
	if url != "" {
		return &exec.Client{
			BaseURL: strings.TrimRight(url, "/"),
			Params: exec.ClientParams{
				Model:     model,
				Objective: objective,
				Method:    method,
				Family:    family,
				Seed:      seed,
			},
		}, func() {}, nil
	}
	params := service.Request{Seed: seed}
	var err error
	if model != "" {
		if params.Model, err = cliopt.Model(model); err != nil {
			return nil, nil, err
		}
	}
	if objective != "" {
		if params.Objective, err = cliopt.Objective(objective); err != nil {
			return nil, nil, err
		}
	}
	if method != "" {
		if params.Method, err = cliopt.Method(method); err != nil {
			return nil, nil, err
		}
	}
	if family != "" {
		if params.Family, err = cliopt.Family(family); err != nil {
			return nil, nil, err
		}
	}
	srv := service.New(service.Config{})
	return &exec.Local{Server: srv, Params: params}, srv.Close, nil
}

// parseTruth decodes the -drift / -drift-cost assignment lists.
func parseTruth(sels, costs string) (map[string]exec.Truth, error) {
	truth := make(map[string]exec.Truth)
	parse := func(list, what string, assign func(t *exec.Truth, v rat.Rat)) error {
		if list == "" {
			return nil
		}
		for _, item := range strings.Split(list, ",") {
			name, val, ok := strings.Cut(strings.TrimSpace(item), "=")
			if !ok {
				return fmt.Errorf("parsing -%s: %q is not name=value", what, item)
			}
			v, err := rat.Parse(val)
			if err != nil {
				return fmt.Errorf("parsing -%s %q: %w", what, item, err)
			}
			t := truth[name]
			assign(&t, v)
			truth[name] = t
		}
		return nil
	}
	if err := parse(sels, "drift", func(t *exec.Truth, v rat.Rat) { t.Selectivity = &v }); err != nil {
		return nil, err
	}
	if err := parse(costs, "drift-cost", func(t *exec.Truth, v rat.Rat) { t.Cost = &v }); err != nil {
		return nil, err
	}
	if len(truth) == 0 {
		return nil, nil
	}
	return truth, nil
}

// printReport renders the human-readable run summary.
func printReport(r *exec.Report) {
	fmt.Printf("tuples     = %d (emitted %d, %d rounds)\n", r.Tuples, r.Emitted, r.Rounds)
	fmt.Printf("plan       = %s (value %s, period %s)\n", r.Hash, r.Value, r.Period)
	fmt.Printf("re-plans   = %d controller patch(es), %d adopted event(s), %d swap(s)\n",
		r.Patches, r.ReplanEvents, r.Swaps)
	if r.Throughput > 0 {
		fmt.Printf("throughput = %.0f tuples/s (%s)\n", r.Throughput, r.Elapsed.Round(1000000))
	}
	fmt.Println()
	fmt.Printf("%-10s %10s %10s %14s %14s %12s\n", "service", "in", "out", "emp sel", "decl sel", "mean cost")
	services := append([]exec.ServiceStats(nil), r.Services...)
	sort.Slice(services, func(i, j int) bool { return services[i].Name < services[j].Name })
	for _, s := range services {
		fmt.Printf("%-10s %10d %10d %14s %14s %12s\n",
			s.Name, s.In, s.Out, s.EmpSelectivity, s.DeclSelectivity, s.MeanCost)
	}
	for _, ep := range r.Episodes {
		fmt.Printf("\nround %d (%s): %s -> %s, value %s -> %s",
			ep.Round, ep.Source, short(ep.OldHash), short(ep.NewHash), ep.OldValue, ep.NewValue)
		for _, u := range ep.Updates {
			fmt.Printf("\n  %s:", u.Service)
			if u.Selectivity != nil {
				fmt.Printf(" selectivity=%s", *u.Selectivity)
			}
			if u.Cost != nil {
				fmt.Printf(" cost=%s", *u.Cost)
			}
		}
	}
	if len(r.Episodes) > 0 {
		fmt.Println()
	}
}

func short(hash string) string {
	if len(hash) > 12 {
		return hash[:12]
	}
	return hash
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "filterexec:", err)
	os.Exit(1)
}
