// Command filterplan optimizes one filtering-workflow instance: it reads an
// application from a JSON instance file (or uses the paper's built-in
// examples), finds a plan minimizing the period or the latency under the
// chosen communication model, and prints the execution graph, the
// per-service cost table, the operation list and an ASCII Gantt chart.
//
// Usage:
//
//	filterplan -in instance.json [-model overlap|inorder|outorder]
//	           [-objective period|latency]
//	           [-method auto|greedy-chain|exact-chain|exact-forest|exact-dag|hill-climb|bnb]
//	           [-family auto|chain|forest|dag]
//	           [-workers N] [-canon] [-gantt] [-timeline] [-replay N]
//	filterplan -demo fig1|b1|b2    (run on a built-in paper instance)
//
// -canon canonicalizes the instance before solving (service permutation,
// rational normalization, precedence reduction — see internal/canon) and
// prints the content hash, reproducing exactly what the filterd planning
// service would solve and cache for this instance.
//
// The bnb method (alias branch-bound) certifies the same optimum as the
// blind exact enumerations by branch-and-bound: it constructs execution
// graphs incrementally, bounds every partial graph from below
// (PeriodLowerBound and its latency analogue on partial structures) and
// prunes subtrees that cannot beat the incumbent seeded by the greedy and
// hill-climbing solutions. That reaches instance sizes the blind methods
// reject (chains to n=12, forests to n=7 by default) and reports the search
// effort as nodes expanded / candidates evaluated / subtrees pruned.
// -family restricts the searched structural family: the default auto picks
// the family the blind exact methods would certify (forests for period
// without precedence constraints, DAGs otherwise); chain certifies
// optimality among chains on the largest instances.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/canon"
	"repro/internal/cliopt"
	"repro/internal/paperex"
	"repro/internal/rat"
	"repro/internal/sim"
	"repro/internal/solve"
	"repro/internal/workflow"
)

func main() {
	var (
		inFile    = flag.String("in", "", "instance file (JSON)")
		demo      = flag.String("demo", "", "built-in instance: fig1, b1, b2")
		modelName = flag.String("model", "overlap", "communication model: overlap, inorder, outorder")
		objective = flag.String("objective", "period", "objective: period or latency")
		method    = flag.String("method", "auto", "search method: auto, greedy-chain, exact-chain, exact-forest, exact-dag, hill-climb, bnb (branch-and-bound)")
		family    = flag.String("family", "auto", "structural family for -method bnb: auto, chain, forest, dag")
		workers   = flag.Int("workers", 0, "worker goroutines for the plan search (0 = all CPUs, 1 = serial; any value returns the same plan)")
		canonical = flag.Bool("canon", false, "canonicalize the instance first (the filterd service form) and print its content hash")
		gantt     = flag.Bool("gantt", false, "print an ASCII Gantt chart of the schedule")
		timeline  = flag.Bool("timeline", false, "print the operation list event by event")
		replay    = flag.Int("replay", 0, "replay the schedule for N data sets and report throughput")
		schedOut  = flag.String("schedule-out", "", "write the schedule (oplist JSON) to this file — comparable bit for bit with filterexec -dump-schedule")
	)
	flag.Parse()

	app, err := loadApp(*inFile, *demo)
	if err != nil {
		fatal(err)
	}
	if *canonical {
		inst, err := canon.Canonicalize(app)
		if err != nil {
			fatal(err)
		}
		app = inst.App()
		fmt.Printf("canonical hash: %s\n", inst.Hash())
	}
	m, err := cliopt.Model(*modelName)
	if err != nil {
		fatal(err)
	}
	meth, err := cliopt.Method(*method)
	if err != nil {
		fatal(err)
	}
	fam, err := cliopt.Family(*family)
	if err != nil {
		fatal(err)
	}
	if fam != solve.FamilyAuto && meth != solve.BranchBound {
		fatal(fmt.Errorf("-family %s requires -method bnb", fam))
	}
	opts := solve.Options{Method: meth, Family: fam, Workers: *workers}
	var stats solve.Stats
	if meth == solve.BranchBound {
		opts.Stats = &stats
	}

	obj, err := cliopt.Objective(*objective)
	if err != nil {
		fatal(err)
	}
	var sol solve.Solution
	if obj == solve.PeriodObjective {
		sol, err = solve.MinPeriod(app, m, opts)
	} else {
		sol, err = solve.MinLatency(app, m, opts)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("instance: %d services, model %s, objective %s, method %s\n",
		app.N(), m, *objective, meth)
	fmt.Printf("plan: %s\n", sol.Graph)
	exact := "heuristic (upper bound)"
	if sol.Exact {
		exact = "provably optimal"
	}
	fmt.Printf("%s = %s (%s)\n", *objective, sol.Value, exact)
	fmt.Printf("schedule: period λ = %s, latency = %s, model lower bound = %s\n",
		sol.Sched.List.Period(), sol.Sched.List.Latency(), sol.Sched.LowerBound)
	if meth == solve.BranchBound {
		fmt.Printf("search: %d nodes expanded, %d candidates evaluated, %d subtrees pruned\n",
			stats.Expanded, stats.Evaluated, stats.Pruned)
	}
	fmt.Println()
	fmt.Println(sol.Graph.Describe())

	if *timeline {
		fmt.Println(sol.Sched.List.Timeline())
	}
	if *gantt {
		fmt.Println(sol.Sched.List.Gantt(rat.Zero, 72))
	}
	if *schedOut != "" {
		doc, err := json.Marshal(sol.Sched.List)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*schedOut, append(doc, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	if *replay > 0 {
		tr, err := sim.Replay(sol.Sched.List, *replay)
		if err != nil {
			fatal(err)
		}
		last := tr.N() - 1
		fmt.Printf("replay: %d data sets, first completion at %s, last at %s\n",
			tr.N(), tr.Done[0], tr.Done[last])
		if last > 0 {
			fmt.Printf("replay: steady inter-completion gap %s, per-data-set latency %s\n",
				tr.Gap(last), tr.Latency(last))
		}
	}
}

func loadApp(inFile, demo string) (*workflow.App, error) {
	switch {
	case demo != "":
		switch strings.ToLower(demo) {
		case "fig1":
			return paperex.Fig1App(), nil
		case "b1":
			return paperex.B1App(), nil
		case "b2":
			return paperex.B2App(), nil
		default:
			return nil, fmt.Errorf("unknown demo %q (want fig1, b1 or b2)", demo)
		}
	case inFile != "":
		data, err := os.ReadFile(inFile)
		if err != nil {
			return nil, err
		}
		var app workflow.App
		if err := json.Unmarshal(data, &app); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", inFile, err)
		}
		return &app, nil
	default:
		return nil, fmt.Errorf("need -in FILE or -demo NAME (try -demo fig1)")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "filterplan:", err)
	os.Exit(1)
}
