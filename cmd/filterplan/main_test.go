package main

import (
	"os"
	"path/filepath"
	"testing"
)

// Option-vocabulary parsing (models, methods, families) is shared with the
// other commands and the filterd service; its tests live in
// internal/cliopt.

func TestLoadAppDemos(t *testing.T) {
	for name, n := range map[string]int{"fig1": 5, "b1": 202, "b2": 12} {
		app, err := loadApp("", name)
		if err != nil || app.N() != n {
			t.Errorf("demo %s: N=%v err=%v", name, app, err)
		}
	}
	if _, err := loadApp("", "bogus"); err == nil {
		t.Error("bogus demo accepted")
	}
	if _, err := loadApp("", ""); err == nil {
		t.Error("missing inputs accepted")
	}
}

func TestLoadAppFromFile(t *testing.T) {
	app, err := loadApp(filepath.Join("..", "..", "testdata", "webquery8.json"), "")
	if err != nil {
		t.Fatal(err)
	}
	if app.N() != 8 {
		t.Fatalf("N = %d", app.N())
	}
	if !app.HasPrecedence() {
		t.Fatal("testdata instance should carry precedence constraints")
	}
	if _, err := loadApp("no-such-file.json", ""); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadApp(bad, ""); err == nil {
		t.Error("invalid file accepted")
	}
}
