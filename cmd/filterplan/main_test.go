package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/plan"
	"repro/internal/solve"
)

func TestParseModel(t *testing.T) {
	cases := map[string]plan.Model{
		"overlap": plan.Overlap, "INORDER": plan.InOrder, "OutOrder": plan.OutOrder,
	}
	for in, want := range cases {
		got, err := parseModel(in)
		if err != nil || got != want {
			t.Errorf("parseModel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseModel("bogus"); err == nil {
		t.Error("bogus model accepted")
	}
}

func TestParseMethod(t *testing.T) {
	cases := map[string]solve.Method{
		"auto": solve.Auto, "greedy-chain": solve.GreedyChain, "exact-chain": solve.ExactChain,
		"exact-forest": solve.ExactForest, "exact-dag": solve.ExactDAG, "hill-climb": solve.HillClimb,
		"bnb": solve.BranchBound, "Branch-Bound": solve.BranchBound,
	}
	for in, want := range cases {
		got, err := parseMethod(in)
		if err != nil || got != want {
			t.Errorf("parseMethod(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseMethod("bogus"); err == nil {
		t.Error("bogus method accepted")
	}
}

func TestParseFamily(t *testing.T) {
	cases := map[string]solve.Family{
		"auto": solve.FamilyAuto, "chain": solve.FamilyChain,
		"Forest": solve.FamilyForest, "DAG": solve.FamilyDAG,
	}
	for in, want := range cases {
		got, err := parseFamily(in)
		if err != nil || got != want {
			t.Errorf("parseFamily(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseFamily("bogus"); err == nil {
		t.Error("bogus family accepted")
	}
}

func TestLoadAppDemos(t *testing.T) {
	for name, n := range map[string]int{"fig1": 5, "b1": 202, "b2": 12} {
		app, err := loadApp("", name)
		if err != nil || app.N() != n {
			t.Errorf("demo %s: N=%v err=%v", name, app, err)
		}
	}
	if _, err := loadApp("", "bogus"); err == nil {
		t.Error("bogus demo accepted")
	}
	if _, err := loadApp("", ""); err == nil {
		t.Error("missing inputs accepted")
	}
}

func TestLoadAppFromFile(t *testing.T) {
	app, err := loadApp(filepath.Join("..", "..", "testdata", "webquery8.json"), "")
	if err != nil {
		t.Fatal(err)
	}
	if app.N() != 8 {
		t.Fatalf("N = %d", app.N())
	}
	if !app.HasPrecedence() {
		t.Fatal("testdata instance should carry precedence constraints")
	}
	if _, err := loadApp("no-such-file.json", ""); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadApp(bad, ""); err == nil {
		t.Error("invalid file accepted")
	}
}
